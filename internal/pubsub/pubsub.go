// Package pubsub embeds a content-based publish/subscribe system in the
// DR-tree overlay (the paper's overall goal): subscribers register
// predicate filters (package filter), the broker compiles them to
// poly-space rectangles over a fixed attribute Space, and routes events
// with no false negatives and few false positives.
//
// The broker decouples subscribers from overlay processes through a
// gateway layer: subscribers attach to a bounded pool of gateway
// processes (the only members of the DR-tree), and each gateway's
// overlay filter is the MBR-union of its local subscriptions — the
// paper's §2.2 containment relation applied at runtime. The overlay
// size, join traffic and per-event routing cost therefore scale with
// the gateway count, not the subscriber count; per-gateway matching
// uses a local R-tree index over the unique subscription rectangles
// (equivalent filters share one entry), so per-event classification is
// sublinear in subscribers too.
//
// The broker is engine-agnostic: it consumes only the unified
// engine.Engine interface, so the same pub/sub front end runs over the
// sequential tree, the deterministic message-passing cluster (including
// lossy simulated networks), or the goroutine-per-node live cluster.
// Gateways move their overlay filter through the engine.FilterUpdater
// capability; engines without it fall back to a leave/re-join cycle.
package pubsub

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/rtree"
	"drtree/internal/split"
	"drtree/internal/state"
)

// ErrProducerNotRegistered reports a Publish/PublishBatch whose producer
// is not a current subscriber — including the race where the producer is
// unsubscribed concurrently with the publish (which otherwise surfaces
// as a raw engine error).
var ErrProducerNotRegistered = errors.New("pubsub: producer not registered")

// DefaultGateways is the default size of the gateway pool. Sixteen keeps
// a gateway's lock essentially uncontended for any realistic publisher
// count while the overlay stays small and the per-gateway match indexes
// stay cache-friendly.
const DefaultGateways = 16

// subscription is the broker-side record of one subscriber.
type subscription struct {
	f    filter.Filter
	key  string    // rectKey of the compiled rectangle, into gateway.entries
	cons *consumer // delivery queue; nil for record-only subscribers
}

// matchEntry is one unique subscription rectangle inside a gateway's
// match index, shared by every subscriber whose filter compiles to the
// same rectangle (equivalent-filter dedup: the containment order's
// equivalence classes collapse to one R-tree entry).
type matchEntry struct {
	rect geom.Rect
	subs map[core.ProcID]entrySub
}

// entrySub is one subscriber sharing a match entry: its exact predicate
// filter and its delivery queue (nil for record-only subscribers).
type entrySub struct {
	f    filter.Filter
	cons *consumer
}

// matchIndex is the spatial-index surface a gateway needs from its
// match index. An interface (satisfied by *rtree.Tree) so tests can
// inject index faults when certifying the broker's failure paths.
type matchIndex interface {
	Insert(r geom.Rect, data any) error
	Delete(r geom.Rect, data any) (bool, error)
	VisitCount(p geom.Point) (matches []any, visited int)
}

// gateway is one overlay process aggregating many local subscriptions.
// Its overlay filter is the running MBR-union of the local rectangles:
// it grows when a subscription escapes the current union (a contained
// filter rides for free — §2.2 at runtime) and shrinks opportunistically
// when the unique rectangle set loses a maximal element.
type gateway struct {
	procID core.ProcID // overlay process ID (gateway base + off)
	off    int         // stable pool offset; survives pool compaction

	mu      sync.RWMutex
	subs    map[core.ProcID]subscription
	entries map[string]*matchEntry
	index   matchIndex // unique rectangles -> *matchEntry
	union   geom.Rect  // exact MBR-union fold of entries (see union.go)
	// loAt/hiAt count, per dimension, how many entries numerically
	// attain the union's lo/hi boundary — the incremental re-union
	// bookkeeping (union.go).
	loAt, hiAt []int
	// fullReunions counts O(entries) union recomputations on the
	// unsubscribe/UpdateFilter shrink path (boundary departures); the
	// drift workloads pin it to zero for contained moves.
	fullReunions uint64
	routeRect    geom.Rect // rectangle registered in the routing tree (empty = absent)
	joined       bool
}

// load is the gateway's subscription count; callers hold gw.mu or the
// pool lock exclusively (see pool.go on why the latter suffices).
func (gw *gateway) load() int { return len(gw.subs) }

// Broker is the pub/sub front end over one DR-tree engine. It is safe
// for concurrent use: subscriber state is sharded per gateway under
// per-gateway read/write locks, and overlay-engine calls (which the
// Engine contract does not require to be concurrency-safe) are
// serialized behind a single engine mutex. The expensive per-event work
// — compiling filters and events, and the match-index scans that
// classify interest — runs outside the engine mutex, so concurrent
// publishers only serialize on the overlay traversal itself. The lock
// order is fixed: a gateway lock may be held while taking the engine
// mutex, never the reverse.
type Broker struct {
	space   *filter.Space
	engMu   sync.Mutex // serializes all calls into eng
	eng     engine.Engine
	updater engine.FilterUpdater // nil when the engine lacks the capability

	// poolMu guards the pool itself: gws, byProc, assign, idle, nextOff.
	// Fixed-mode pools never change shape, so the hot paths there take
	// it only for a pointer lookup; adaptive-pool mutations (placement,
	// split, drain, retire — pool.go) hold it exclusively. Lock order:
	// poolMu -> gateway.mu -> (engMu | routeMu).
	poolMu  sync.RWMutex
	gws     []*gateway
	byProc  map[core.ProcID]*gateway
	assign  map[core.ProcID]*gateway // subscriber -> gateway; nil in fixed mode
	idle    []*gateway               // zero-load gateways, reused before growing
	nextOff int                      // next never-used pool offset
	policy  *gatewayPolicy           // nil = fixed WithGateways pool

	// route is the top level of the two-level classification tree: one
	// entry per gateway with at least one subscription, keyed by the
	// gateway's MBR-union. An event consults it once to learn which
	// per-gateway match indexes to visit at all.
	routeMu sync.RWMutex
	route   *rtree.Tree

	gwBase core.ProcID // procID of pool offset 0
	// needRejoin flags that some gateway was marked unjoined while still
	// holding live subscriptions (a failed fallback filter move): the
	// next publish or Repair re-establishes its membership lazily.
	needRejoin atomic.Bool

	// Durability (nil store = memory-only broker, the previous behaviour).
	store     state.Store
	snapEvery int
	sinceSnap atomic.Uint64 // journal records since the last checkpoint
	snapBusy  atomic.Bool   // one background checkpoint at a time

	// defaultDelivery holds the broker-wide delivery defaults that
	// per-subscription DeliveryOptions override.
	defaultDelivery deliveryConfig
}

// New creates a broker over the given attribute space and overlay
// engine. The broker owns the engine from then on: overlay membership
// must be managed through the broker only. The option list is flat:
// construction options (WithGateways, WithStore, ...) and delivery
// options (WithQueueDepth, ...; applied as broker-wide defaults) mix
// freely.
func New(space *filter.Space, eng engine.Engine, opts ...Option) (*Broker, error) {
	if space == nil {
		return nil, fmt.Errorf("pubsub: nil space")
	}
	if eng == nil {
		return nil, fmt.Errorf("pubsub: nil engine")
	}
	cfg := brokerConfig{
		gateways:      DefaultGateways,
		gwBase:        1,
		snapshotEvery: DefaultSnapshotEvery,
		delivery:      deliveryConfig{depth: DefaultQueueDepth, policy: DropOldest},
	}
	for _, opt := range opts {
		if err := opt.applyBroker(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.policy != nil && cfg.gatewaysSet {
		return nil, fmt.Errorf("pubsub: WithGateways and WithGatewayPolicy are mutually exclusive")
	}
	b := &Broker{
		space:           space,
		eng:             eng,
		gwBase:          cfg.gwBase,
		policy:          cfg.policy,
		store:           cfg.store,
		snapEvery:       cfg.snapshotEvery,
		defaultDelivery: cfg.delivery,
	}
	b.updater, _ = eng.(engine.FilterUpdater)
	// Same wide fan-out as the per-gateway match indexes: an adaptive
	// pool can reach thousands of gateways, and fan-out 32 keeps the
	// routing tree two levels deep (so route-node visits stay a small
	// constant) all the way to the policy ceiling.
	b.route = rtree.MustNew(8, 32, split.RStar{})
	n := cfg.gateways
	if b.policy != nil {
		n = b.policy.min
		b.assign = make(map[core.ProcID]*gateway)
	}
	b.byProc = make(map[core.ProcID]*gateway, n)
	b.gws = make([]*gateway, 0, n)
	for i := 0; i < n; i++ {
		gw := b.newGateway(i)
		b.gws = append(b.gws, gw)
		b.byProc[gw.procID] = gw
		if b.policy != nil {
			b.idle = append(b.idle, gw)
		}
	}
	b.nextOff = n
	return b, nil
}

// NewCore is New over a fresh sequential engine.
//
// Deprecated: construct the engine explicitly and call New — the split
// constructor predates the unified option set and adds nothing over
// core.New + New.
func NewCore(space *filter.Space, params core.Params, opts ...Option) (*Broker, error) {
	tree, err := core.New(params)
	if err != nil {
		return nil, err
	}
	return New(space, tree, opts...)
}

// rectKey is an exact, collision-free encoding of a rectangle's bounds
// (bit-level, not printf-rounded) used to detect equivalent filters.
// Negative zero is normalized to positive zero before encoding so the
// key respects Rect.Equal: -0.0 == +0.0 but their bit patterns differ,
// and without the normalization two Equal rectangles would land in
// different equivalence classes and duplicate match-index entries.
func rectKey(r geom.Rect) string {
	buf := make([]byte, 0, 16*r.Dims())
	for i := 0; i < r.Dims(); i++ {
		buf = strconv.AppendUint(buf, math.Float64bits(r.Lo(i)+0), 16)
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, math.Float64bits(r.Hi(i)+0), 16)
		buf = append(buf, ';')
	}
	return string(buf)
}

// owner returns the gateway owning subscriber id: the hash slot in
// fixed mode (registered or not — the historical contract), the current
// assignment in policy mode (nil when id is not registered).
func (b *Broker) owner(id core.ProcID) *gateway {
	b.poolMu.RLock()
	gw := b.ownerLocked(id)
	b.poolMu.RUnlock()
	return gw
}

// ownerLocked is owner with poolMu already held (either mode). Safe
// without poolMu in fixed mode only, where the pool never changes.
func (b *Broker) ownerLocked(id core.ProcID) *gateway {
	if b.assign != nil {
		return b.assign[id]
	}
	return b.gws[uint64(id)%uint64(len(b.gws))]
}

// registered reports whether id is a current subscriber.
func (b *Broker) registered(id core.ProcID) bool {
	gw := b.owner(id)
	if gw == nil {
		return false
	}
	gw.mu.RLock()
	_, ok := gw.subs[id]
	gw.mu.RUnlock()
	return ok
}

// poolSnapshot clones the pool slice for lock-free iteration.
func (b *Broker) poolSnapshot() []*gateway {
	b.poolMu.RLock()
	gws := slices.Clone(b.gws)
	b.poolMu.RUnlock()
	return gws
}

// Engine exposes the underlying overlay engine (for inspection and
// experiments). Callers must not mutate the engine concurrently with
// broker operations.
func (b *Broker) Engine() engine.Engine { return b.eng }

// Space returns the broker's attribute space.
func (b *Broker) Space() *filter.Space { return b.space }

// Gateways returns the current gateway pool size (fixed under
// WithGateways; load-driven under WithGatewayPolicy).
func (b *Broker) Gateways() int {
	b.poolMu.RLock()
	n := len(b.gws)
	b.poolMu.RUnlock()
	return n
}

// Len returns the number of active subscribers.
func (b *Broker) Len() int {
	n := 0
	for _, gw := range b.poolSnapshot() {
		gw.mu.RLock()
		n += len(gw.subs)
		gw.mu.RUnlock()
	}
	return n
}

// GatewayStat describes one gateway of the pool.
type GatewayStat struct {
	// ProcID is the gateway's overlay process ID.
	ProcID core.ProcID
	// Subscribers is the number of local subscriptions.
	Subscribers int
	// UniqueFilters is the number of distinct subscription rectangles
	// (the match-index size; equivalent filters share an entry).
	UniqueFilters int
	// Filter is the gateway's overlay filter: the MBR-union of the local
	// subscription rectangles (empty when the gateway is not joined).
	Filter geom.Rect
	// Joined reports whether the gateway is currently an overlay member.
	Joined bool
	// QueueDepth is the total backlog across the delivery queues of the
	// gateway's queue-backed subscribers (zero when none).
	QueueDepth int
	// Dropped totals the messages shed by those queues (overflow,
	// redelivery exhaustion, close).
	Dropped uint64
	// Redelivered totals their at-least-once delivery retries.
	Redelivered uint64
	// FullReunions counts the O(entries) union recomputations this
	// gateway performed on the unsubscribe/UpdateFilter shrink path.
	// Contained filter moves keep it flat (the incremental re-union);
	// only boundary departures pay the fold.
	FullReunions uint64
}

// GatewayStats returns a snapshot of every gateway in pool order.
func (b *Broker) GatewayStats() []GatewayStat {
	gws := b.poolSnapshot()
	out := make([]GatewayStat, len(gws))
	for i, gw := range gws {
		gw.mu.RLock()
		st := GatewayStat{
			ProcID:        gw.procID,
			Subscribers:   len(gw.subs),
			UniqueFilters: len(gw.entries),
			Joined:        gw.joined,
			FullReunions:  gw.fullReunions,
		}
		if gw.joined {
			st.Filter = gw.union
		}
		for _, sub := range gw.subs {
			if sub.cons == nil {
				continue
			}
			qs := sub.cons.q.Stats()
			st.QueueDepth += qs.Depth
			st.Dropped += qs.Dropped
			st.Redelivered += qs.Redelivered
		}
		out[i] = st
		gw.mu.RUnlock()
	}
	return out
}

// engJoin joins a gateway to the overlay under the engine mutex.
func (b *Broker) engJoin(id core.ProcID, f geom.Rect) error {
	b.engMu.Lock()
	defer b.engMu.Unlock()
	return b.eng.Join(id, f)
}

// engUpdateFilter moves gw's overlay filter under the engine mutex, via
// the FilterUpdater capability when the engine has it, else through a
// leave/re-join cycle. The caller holds gw.mu. On a failed move the
// gateway's membership state is kept accurate: the fallback re-joins
// with the old filter, and if even that fails the gateway is marked
// unjoined so the next Subscribe re-establishes membership (with a
// union covering every local subscription) instead of the broker
// believing in a membership the engine no longer has.
func (b *Broker) engUpdateFilter(gw *gateway, f geom.Rect) error {
	b.engMu.Lock()
	defer b.engMu.Unlock()
	if b.updater != nil {
		return b.updater.UpdateFilter(gw.procID, f)
	}
	if err := b.eng.Leave(gw.procID); err != nil {
		return err
	}
	if err := b.eng.Join(gw.procID, f); err != nil {
		if rerr := b.eng.Join(gw.procID, gw.union); rerr != nil {
			gw.joined = false
			// The union stays what it is — the exact fold of the local
			// entries (union.go) — so the lazy re-join below and in
			// rejoinStale re-covers every local subscription. Flag the
			// stranding so the next publish or Repair re-joins, instead
			// of subscribers silently missing every event until a future
			// Subscribe lands on the same gateway.
			b.needRejoin.Store(true)
		}
		return err
	}
	return nil
}

// rejoinStale re-establishes overlay membership for every gateway that
// was marked unjoined while still holding live subscriptions (the
// double-failure path of engUpdateFilter). Best-effort: a gateway whose
// re-join the engine still refuses stays flagged for the next attempt.
// Called from the publish path and from Repair, so a transient engine
// refusal heals as soon as the engine does, without waiting for an
// unrelated Subscribe.
func (b *Broker) rejoinStale() {
	if !b.needRejoin.Swap(false) {
		return
	}
	for _, gw := range b.poolSnapshot() {
		gw.mu.Lock()
		if !gw.joined && len(gw.subs) > 0 {
			// The maintained union is the exact fold of the local
			// entries even while unjoined, so it is the re-join filter.
			if err := b.engJoin(gw.procID, gw.union); err != nil {
				b.needRejoin.Store(true)
			} else {
				gw.joined = true
			}
		}
		gw.mu.Unlock()
	}
}

// Subscribe registers subscriber id with the given filter: the filter is
// compiled to its rectangle, indexed at the owning gateway, and the
// gateway's overlay filter grows to cover it if it does not already
// (message-passing engines may still be routing the join or the filter
// update when Subscribe returns; Repair drives the overlay to
// quiescence). Subscriber IDs must be positive and unused. On a durable
// broker the registration is journaled before Subscribe returns.
func (b *Broker) Subscribe(id core.ProcID, f filter.Filter) error {
	return b.subscribe(id, f, nil, true)
}

// subscribe is the shared registration path: Subscribe passes a nil
// consumer (record-only), SubscribeFunc/SubscribeChan pass the
// subscriber's delivery queue. journal is false only on the Recover
// path, which re-applies records that are already durable.
func (b *Broker) subscribe(id core.ProcID, f filter.Filter, cons *consumer, journal bool) error {
	return b.subscribeAt(id, f, cons, journal, -1)
}

// subscribeAt is subscribe with an optional pinned pool offset: off >= 0
// replays a journaled assignment during Recover (policy mode only),
// off < 0 places through the pool policy, or hashes in fixed mode.
func (b *Broker) subscribeAt(id core.ProcID, f filter.Filter, cons *consumer, journal bool, off int) error {
	if id <= core.NoProc {
		return fmt.Errorf("pubsub: subscriber IDs must be positive, got %d", id)
	}
	rect, err := b.space.Rect(f)
	if err != nil {
		return fmt.Errorf("pubsub: compiling filter: %w", err)
	}
	if b.policy != nil {
		return b.subscribePolicy(id, rect, f, cons, journal, off)
	}
	gw := b.ownerLocked(id) // fixed pool: no lock needed, never resizes
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return b.subscribeLocked(gw, id, rect, f, cons, journal)
}

// subscribePolicy is the adaptive-pool registration path: placement,
// split-growth and the assignment table live under poolMu (pool.go).
func (b *Broker) subscribePolicy(id core.ProcID, rect geom.Rect, f filter.Filter, cons *consumer, journal bool, off int) error {
	b.poolMu.Lock()
	defer b.poolMu.Unlock()
	if b.assign[id] != nil {
		return fmt.Errorf("pubsub: subscriber %d already registered", id)
	}
	var gw *gateway
	if off >= 0 {
		// Recover replaying a journaled assignment. A torn log can pin
		// to a gateway whose pool record was lost: fall back to
		// placement.
		gw = b.byProc[b.gwBase+core.ProcID(off)]
	}
	placed := false
	if gw == nil {
		var err error
		if gw, err = b.placeLocked(rect); err != nil {
			return err
		}
		placed = true
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if err := b.subscribeLocked(gw, id, rect, f, cons, journal); err != nil {
		return err
	}
	b.assign[id] = gw
	b.unmarkIdleLocked(gw)
	if placed && !journal {
		// Recovery placed a subscription whose record carried no usable
		// offset (a v1 log, or a torn pool record): journal the
		// assignment so the *next* recovery replays this placement
		// instead of re-deriving it against a different pool shape.
		_ = b.journalAssign(id, gw.off)
	}
	return nil
}

// subscribeLocked commits one registration on gw: engine first, then
// journal, then the local maps and the incremental union. gw.mu held;
// poolMu held exclusively in policy mode.
func (b *Broker) subscribeLocked(gw *gateway, id core.ProcID, rect geom.Rect, f filter.Filter, cons *consumer, journal bool) error {
	if _, dup := gw.subs[id]; dup {
		return fmt.Errorf("pubsub: subscriber %d already registered", id)
	}
	key := rectKey(rect)
	newEntry := gw.entries[key] == nil
	// Overlay side first: if the engine refuses, no local state was
	// touched. A rectangle inside the current union costs no engine
	// traffic at all (the containment relation rides for free).
	switch {
	case !gw.joined:
		// Normally the gateway is empty here; after a failed filter move
		// (see engUpdateFilter) it may hold subscriptions, so the join
		// filter must cover every local rectangle, not just the new one.
		if err := b.engJoin(gw.procID, gw.unionPeekAdd(rect)); err != nil {
			return err
		}
		gw.joined = true
	case newEntry && !gw.union.Contains(rect):
		if err := b.engUpdateFilter(gw, gw.unionPeekAdd(rect)); err != nil {
			return err
		}
	}
	// Journal before the local commit: if the append fails nothing local
	// changed (the grown union is harmless — false positives at worst),
	// and if a later step fails the journal holds a subscription the
	// memory lacks — a recovered ghost, also false-positive-safe. The
	// inverse order could lose an acknowledged subscription on crash.
	if journal {
		if err := b.journalAppend(journalSubscribe, id, f, gw.off); err != nil {
			return err
		}
	}
	e := gw.entries[key]
	if e == nil {
		e = &matchEntry{rect: rect, subs: make(map[core.ProcID]entrySub)}
		gw.entries[key] = e
		if err := gw.index.Insert(rect, e); err != nil {
			delete(gw.entries, key)
			return fmt.Errorf("pubsub: indexing filter: %w", err)
		}
		gw.unionCommitAdd(rect)
		b.routeReplace(gw, gw.union)
	}
	e.subs[id] = entrySub{f: f, cons: cons}
	gw.subs[id] = subscription{f: f, key: key, cons: cons}
	return nil
}

// SubscribeExpr is Subscribe with a textual filter (filter.Parse syntax).
func (b *Broker) SubscribeExpr(id core.ProcID, src string) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.Subscribe(id, f)
}

// remove is the shared tail of Unsubscribe and Fail: detach the whole
// gateway from the overlay when this was its last subscription (a
// gateway never lingers with a stale filter) or shrink the gateway's
// overlay filter opportunistically when a maximal rectangle disappears,
// then drop the local subscription. The engine is consulted *before*
// any local mutation, mirroring subscribe: a refusal leaves the local
// state untouched, so there is no rollback path — in particular no
// fallible match-index re-insert whose own failure used to leave the
// rectangle missing from the index while the subscription stayed
// registered (a permanent false negative).
func (b *Broker) remove(id core.ProcID, leave func(core.ProcID) error) error {
	if b.policy != nil {
		return b.removePolicy(id, leave)
	}
	gw := b.ownerLocked(id) // fixed pool: no lock needed, never resizes
	gw.mu.Lock()
	defer gw.mu.Unlock()
	_, err := b.removeLocked(gw, id, leave)
	return err
}

// removePolicy removes under the pool lock and then runs the shrink
// policy: an emptied gateway retires (pool above the floor), an
// underfull one drains into its peers.
func (b *Broker) removePolicy(id core.ProcID, leave func(core.ProcID) error) error {
	b.poolMu.Lock()
	defer b.poolMu.Unlock()
	gw := b.assign[id]
	if gw == nil {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	gw.mu.Lock()
	removed, err := b.removeLocked(gw, id, leave)
	gw.mu.Unlock()
	if removed {
		delete(b.assign, id)
	}
	if err != nil {
		// Either nothing changed (engine refusal) or only durability is
		// behind (journal append). Skip the shrink either way: pool
		// reorganizations would pile more appends onto a failing store.
		return err
	}
	b.shrinkPoolLocked(gw)
	return nil
}

// removeLocked commits one departure on gw, engine first. Reports
// whether the local removal happened: a journal-append failure still
// removes (the engine already committed) and returns the error only to
// signal durability lag. gw.mu held.
func (b *Broker) removeLocked(gw *gateway, id core.ProcID, leave func(core.ProcID) error) (bool, error) {
	sub, ok := gw.subs[id]
	if !ok {
		return false, fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	e := gw.entries[sub.key]
	entryGone := len(e.subs) == 1
	lastSub := len(gw.subs) == 1
	var newU geom.Rect
	var full bool
	switch {
	case lastSub:
		b.engMu.Lock()
		err := leave(gw.procID)
		b.engMu.Unlock()
		if err != nil {
			return false, err
		}
		gw.joined = false
	case entryGone:
		newU, full = gw.unionPeekRemove(e)
		if !newU.Equal(gw.union) {
			if err := b.engUpdateFilter(gw, newU); err != nil {
				return false, err
			}
		}
	}
	delete(gw.subs, id)
	delete(e.subs, id)
	if entryGone {
		delete(gw.entries, sub.key)
		// The engine already committed: a failed index delete merely
		// leaves an inert entry behind (its subscriber map is empty) —
		// scan garbage at worst, never a false negative.
		gw.index.Delete(e.rect, e)
		if lastSub {
			gw.unionReset()
		} else {
			gw.unionCommitRemove(e, newU, full)
		}
		b.routeReplace(gw, gw.union)
	}
	if sub.cons != nil {
		sub.cons.q.Close()
	}
	// Journal last: the engine already committed the departure, so the
	// removal must stand either way. A failed append leaves a ghost
	// subscription in the journal — a false positive after recovery,
	// never a false negative — and the error tells the caller durability
	// is behind.
	return true, b.journalAppend(journalUnsubscribe, id, filter.Filter{}, gw.off)
}

// recomputeUnion derives the gateway's tightest overlay filter after a
// unique rectangle disappeared. By the §2.2 containment order this
// equals the union of the order's maximal elements (every non-maximal
// rectangle is inside a maximal one, and equivalents already collapsed
// into one entry) — which is exactly the direct union of all entries,
// computed in one O(entries) pass rather than via an O(entries²)
// containment-graph build on the churn path.
func (gw *gateway) recomputeUnion() geom.Rect {
	var u geom.Rect
	for _, e := range gw.entries {
		u = u.Union(e.rect)
	}
	return u
}

// unionWithout is recomputeUnion with one entry excluded — the union the
// gateway will need once that entry's last subscriber is removed,
// computed before any local state changes so the engine can be consulted
// first.
func (gw *gateway) unionWithout(skip *matchEntry) geom.Rect {
	var u geom.Rect
	for _, e := range gw.entries {
		if e == skip {
			continue
		}
		u = u.Union(e.rect)
	}
	return u
}

// Unsubscribe removes a subscriber; a gateway losing its last
// subscription leaves the overlay via a controlled departure.
func (b *Broker) Unsubscribe(id core.ProcID) error {
	return b.remove(id, b.eng.Leave)
}

// UpdateFilter atomically replaces subscriber id's filter, preserving
// its delivery queue and sequence numbering. The gateway's overlay
// filter grows (engine-first) when the new rectangle escapes the
// current union and shrinks opportunistically when the old rectangle
// was a maximal element. On a durable broker the change is journaled
// before any local state moves.
func (b *Broker) UpdateFilter(id core.ProcID, f filter.Filter) error {
	rect, err := b.space.Rect(f)
	if err != nil {
		return fmt.Errorf("pubsub: compiling filter: %w", err)
	}
	if b.policy != nil {
		// A shared pool lock keeps the owning gateway stable against
		// concurrent drains/splits while letting filter moves (the
		// continuous-motion hot path) proceed in parallel.
		b.poolMu.RLock()
		defer b.poolMu.RUnlock()
	}
	gw := b.ownerLocked(id)
	if gw == nil {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	sub, ok := gw.subs[id]
	if !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	newKey := rectKey(rect)
	if newKey == sub.key {
		// Same rectangle, possibly different predicates (e.g. x >= 1
		// vs 1 <= x <= inf): only the exact-match filter changes.
		if err := b.journalAppend(journalUpdate, id, f, gw.off); err != nil {
			return err
		}
		e := gw.entries[sub.key]
		e.subs[id] = entrySub{f: f, cons: sub.cons}
		gw.subs[id] = subscription{f: f, key: sub.key, cons: sub.cons}
		return nil
	}
	oldE := gw.entries[sub.key]
	oldGone := len(oldE.subs) == 1
	// Target union after the move: the surviving fold plus the new
	// rectangle. The incremental bookkeeping makes this O(d) for a move
	// that neither leaves a union boundary nor escapes the union — the
	// common case under continuous motion — instead of the old
	// O(entries) refold on every move. Engine first, as everywhere: a
	// refusal changes nothing.
	base, full := gw.union, false
	if oldGone {
		base, full = gw.unionPeekRemove(oldE)
	}
	target := base.Union(rect)
	if gw.joined && !target.Equal(gw.union) {
		if err := b.engUpdateFilter(gw, target); err != nil {
			return err
		}
	}
	if err := b.journalAppend(journalUpdate, id, f, gw.off); err != nil {
		return err
	}
	newE := gw.entries[newKey]
	created := newE == nil
	if created {
		// Index insert is the last fallible step; the entry enters the
		// entries map only after the old entry's removal is committed,
		// so a full-fold recount never sees both.
		newE = &matchEntry{rect: rect, subs: make(map[core.ProcID]entrySub)}
		if err := gw.index.Insert(rect, newE); err != nil {
			return fmt.Errorf("pubsub: indexing filter: %w", err)
		}
	}
	delete(oldE.subs, id)
	if oldGone {
		delete(gw.entries, sub.key)
		// As in remove: a failed index delete leaves an inert entry,
		// never a false negative.
		gw.index.Delete(oldE.rect, oldE)
		gw.unionCommitRemove(oldE, base, full)
	}
	if created {
		gw.entries[newKey] = newE
		gw.unionCommitAdd(rect)
	}
	newE.subs[id] = entrySub{f: f, cons: sub.cons}
	gw.subs[id] = subscription{f: f, key: newKey, cons: sub.cons}
	b.routeReplace(gw, gw.union)
	if !gw.joined {
		// The gateway lost membership earlier (failed filter move with
		// live subscriptions): make sure the lazy re-join sees the flag.
		b.needRejoin.Store(true)
	}
	return nil
}

// UpdateFilterExpr is UpdateFilter with a textual filter (filter.Parse
// syntax).
func (b *Broker) UpdateFilterExpr(id core.ProcID, src string) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.UpdateFilter(id, f)
}

// Fail simulates an abrupt subscriber failure; a gateway losing its last
// subscription crashes out of the overlay (call Repair, or rely on the
// next Repair, to restore the structure).
func (b *Broker) Fail(id core.ProcID) error {
	return b.remove(id, b.eng.Crash)
}

// Repair runs the overlay stabilization to quiescence, first
// re-establishing membership for any gateway stranded by a failed
// filter move.
func (b *Broker) Repair() core.StabReport {
	b.rejoinStale()
	b.engMu.Lock()
	defer b.engMu.Unlock()
	return b.eng.Stabilize()
}

// Close stops every subscriber delivery queue (shedding their backlogs;
// Close never waits on a consumer callback) and releases the underlying
// engine's resources.
func (b *Broker) Close() error {
	for _, gw := range b.poolSnapshot() {
		gw.mu.Lock()
		for _, sub := range gw.subs {
			if sub.cons != nil {
				sub.cons.q.Close()
			}
		}
		gw.mu.Unlock()
	}
	b.engMu.Lock()
	defer b.engMu.Unlock()
	return b.eng.Close()
}

// Notification is the outcome of publishing one event.
type Notification struct {
	// Interested lists subscribers whose filter exactly matches the
	// event (strict predicate semantics), ascending.
	Interested []core.ProcID
	// Received lists subscribers that physically received the event:
	// their subscription rectangle contains it and their gateway's
	// overlay dissemination reached the gateway.
	Received []core.ProcID
	// FalsePositives = received but not interested (rectangle vs strict
	// predicate boundary cases).
	FalsePositives []core.ProcID
	// FalseNegatives = interested but not received (must always be
	// empty on a stabilized overlay; kept for verification). Under
	// concurrent subscriber churn the classification is best-effort: a
	// subscriber joining between overlay routing and the match scan can
	// appear here transiently.
	FalseNegatives []core.ProcID
	// Messages is the inter-process message count of the overlay
	// dissemination (gateway-to-gateway traffic).
	Messages int
	// Rounds is the dissemination latency in network rounds
	// (message-passing engines; 0 for the sequential engine).
	Rounds int
	// ScanVisited counts the R-tree nodes visited to classify this
	// event: the top-level routing tree over gateway unions plus every
	// match index the event was probed against — the total spatial
	// matching cost that replaced the global linear subscriber scan. It
	// is deterministic for a fixed subscription set and event, and grows
	// sublinearly in subscribers.
	ScanVisited int
	// GatewayVisited counts how many per-gateway match indexes this
	// event was probed against: the top-level routing tree over gateway
	// MBR-unions prunes the rest of the pool outright. With a spatially
	// coherent (policy-placed) pool this stays near-constant while the
	// pool grows with load; a fixed hash-assigned pool has overlapping
	// unions, so most events still visit most gateways.
	GatewayVisited int
}

// Publish routes an event from the given producer through the overlay.
// The producer must be a subscriber (the paper's model: publishers and
// consumers share the overlay — the producer's gateway injects the
// event). It is PublishBatch with a batch of one.
func (b *Broker) Publish(producer core.ProcID, ev filter.Event) (Notification, error) {
	notes, err := b.PublishBatch(producer, []filter.Event{ev})
	if err != nil {
		return Notification{}, err
	}
	return notes[0], nil
}

// PublishBatch routes a batch of events from the given producer's
// gateway through the overlay's batched pipeline
// (engine.Engine.PublishBatch) and returns one Notification per event,
// index-aligned. The overlay is traversed with the whole batch in flight
// under one engine-mutex acquisition, and each gateway's match index is
// queried once per event for the whole batch, so the per-event cost
// falls with the batch size.
func (b *Broker) PublishBatch(producer core.ProcID, evs []filter.Event) ([]Notification, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	b.rejoinStale()
	pgw := b.owner(producer)
	if pgw == nil || !b.registered(producer) {
		return nil, fmt.Errorf("%w: %d", ErrProducerNotRegistered, producer)
	}
	gwID := pgw.procID
	batch := make([]core.Publication, len(evs))
	points := make([]geom.Point, len(evs))
	for i, ev := range evs {
		p, err := b.space.Point(ev)
		if err != nil {
			return nil, err
		}
		points[i] = p
		batch[i] = core.Publication{Producer: gwID, Event: p}
	}
	b.engMu.Lock()
	ds, err := b.eng.PublishBatch(batch)
	b.engMu.Unlock()
	if err != nil {
		// A concurrent Unsubscribe/Fail can detach the producer's gateway
		// between the registered check above and the engine call; the
		// engine then reports an unknown process. Map that race back to
		// the sentinel the early check uses, so callers see one error for
		// one condition regardless of interleaving.
		if !b.registered(producer) {
			return nil, fmt.Errorf("%w: %d (unsubscribed concurrently with publish: %v)", ErrProducerNotRegistered, producer, err)
		}
		return nil, err
	}
	notes := make([]Notification, len(evs))
	reached := make([]map[core.ProcID]bool, len(evs))
	for i := range ds {
		notes[i].Messages = ds[i].Messages
		notes[i].Rounds = ds[i].Rounds
		reached[i] = make(map[core.ProcID]bool, len(ds[i].Received))
		for _, id := range ds[i].Received {
			reached[i][id] = true
		}
	}
	pend := b.classifyBatch(notes, evs, points, reached)
	// Delivery happens strictly after every gateway lock is released:
	// enqueueing (which under the Block policy may wait on a consumer)
	// can never stall another publisher's classify pass, and a frozen
	// consumer under the shedding policies costs the publisher nothing.
	b.dispatch(pend)
	return notes, nil
}

// PublishAsync starts disseminating an event from the given producer's
// gateway and returns as soon as the event is in flight, without the
// receipt census Publish blocks for. It requires an engine with the
// engine.AsyncPublisher capability (the live cluster). Deliveries reach
// queue-backed subscribers through NotifyGateway, which the hosting
// daemon bridges to the runtime's event hook — PublishAsync itself
// performs no matching, so there is no double delivery.
func (b *Broker) PublishAsync(producer core.ProcID, ev filter.Event) error {
	ap, ok := b.eng.(engine.AsyncPublisher)
	if !ok {
		return fmt.Errorf("pubsub: engine %T cannot publish asynchronously", b.eng)
	}
	b.rejoinStale()
	pgw := b.owner(producer)
	if pgw == nil || !b.registered(producer) {
		return fmt.Errorf("%w: %d", ErrProducerNotRegistered, producer)
	}
	p, err := b.space.Point(ev)
	if err != nil {
		return err
	}
	gwID := pgw.procID
	b.engMu.Lock()
	err = ap.InjectEvent(gwID, p)
	b.engMu.Unlock()
	if err != nil && !b.registered(producer) {
		return fmt.Errorf("%w: %d (unsubscribed concurrently with publish: %v)", ErrProducerNotRegistered, producer, err)
	}
	return err
}

// NotifyGateway delivers an event that arrived at gateway process
// gwProc from outside the synchronous publish path — the hosting
// daemon's overlay runtime observed the gateway receiving it (event
// hook) and hands it over here. The gateway's match index classifies
// the event and every local queue-backed subscriber whose predicate
// matches gets it enqueued; record-only subscribers are counted as
// matched but have no queue to fill. Returns the number of matching
// subscribers, or 0 when gwProc is not one of this broker's gateways.
// Safe to call concurrently with every other broker operation; like the
// publish path it enqueues only after the gateway lock is released.
func (b *Broker) NotifyGateway(gwProc core.ProcID, ev filter.Event) int {
	b.poolMu.RLock()
	gw := b.byProc[gwProc]
	b.poolMu.RUnlock()
	if gw == nil {
		return 0
	}
	p, err := b.space.Point(ev)
	if err != nil {
		return 0
	}
	matched := 0
	var pend []pending
	gw.mu.RLock()
	matches, _ := gw.index.VisitCount(p)
	for _, m := range matches {
		e := m.(*matchEntry)
		for _, se := range e.subs {
			if !se.f.Match(ev) {
				continue
			}
			matched++
			if se.cons != nil {
				pend = append(pend, pending{cons: se.cons, ev: ev})
			}
		}
	}
	gw.mu.RUnlock()
	b.dispatch(pend)
	return matched
}

// GatewayOf returns the overlay process ID of the gateway owning
// subscriber id. In fixed mode every ID hashes onto a gateway whether
// or not it is registered (the historical contract); under an adaptive
// pool an unregistered ID has no assignment and yields core.NoProc.
func (b *Broker) GatewayOf(id core.ProcID) core.ProcID {
	gw := b.owner(id)
	if gw == nil {
		return core.NoProc
	}
	return gw.procID
}

// classifyBatch fills the per-subscriber sets of each notification in
// two levels: the top-level routing tree (one point query per event over
// the gateway MBR-unions) selects which gateways can match at all, then
// only those gateways' match indexes are probed — every other gateway is
// never visited, which is what decouples the per-event classify cost
// from the pool size. reached[k] is the set of overlay processes the
// engine delivered event k to. It returns the deliveries owed to
// queue-backed subscribers (received and interested); the caller
// enqueues them after all gateway locks are released.
func (b *Broker) classifyBatch(notes []Notification, evs []filter.Event, points []geom.Point, reached []map[core.ProcID]bool) []pending {
	var pend []pending
	// Level one: route. Gateways are collected from the route hits
	// themselves (not a pool snapshot), so a gateway split off while
	// this batch was in flight is still classified.
	perGw := make(map[*gateway][]int)
	var cur, hit int
	collect := func(d any) {
		g := d.(*gateway)
		perGw[g] = append(perGw[g], cur)
		hit++
	}
	b.routeMu.RLock()
	for k := range notes {
		cur, hit = k, 0
		notes[k].ScanVisited += b.route.VisitFunc(points[k], collect)
		notes[k].GatewayVisited = hit
	}
	b.routeMu.RUnlock()
	order := make([]*gateway, 0, len(perGw))
	for g := range perGw {
		order = append(order, g)
	}
	slices.SortFunc(order, func(a, b *gateway) int { return cmp.Compare(a.off, b.off) })
	// Level two: per-gateway match indexes, only for the events whose
	// point fell inside that gateway's union.
	for _, gw := range order {
		gw.mu.RLock()
		if len(gw.subs) == 0 {
			gw.mu.RUnlock()
			continue
		}
		for _, k := range perGw[gw] {
			matches, visited := gw.index.VisitCount(points[k])
			notes[k].ScanVisited += visited
			if len(matches) == 0 {
				continue
			}
			got := reached[k][gw.procID]
			for _, m := range matches {
				e := m.(*matchEntry)
				for id, se := range e.subs {
					interested := se.f.Match(evs[k])
					if interested {
						notes[k].Interested = append(notes[k].Interested, id)
					}
					switch {
					case got:
						notes[k].Received = append(notes[k].Received, id)
						if !interested {
							notes[k].FalsePositives = append(notes[k].FalsePositives, id)
						} else if se.cons != nil {
							pend = append(pend, pending{cons: se.cons, ev: evs[k]})
						}
					case interested:
						notes[k].FalseNegatives = append(notes[k].FalseNegatives, id)
					}
				}
			}
		}
		gw.mu.RUnlock()
	}
	for k := range notes {
		// Sorted and deduplicated: a concurrent pool reorganization can
		// transiently show one subscriber on two gateways.
		notes[k].Interested = sortDedup(notes[k].Interested)
		notes[k].Received = sortDedup(notes[k].Received)
		notes[k].FalsePositives = sortDedup(notes[k].FalsePositives)
		notes[k].FalseNegatives = sortDedup(notes[k].FalseNegatives)
	}
	return pend
}

func sortDedup(ids []core.ProcID) []core.ProcID {
	slices.Sort(ids)
	return slices.Compact(ids)
}
