package pubsub

// The subscriber delivery layer: SubscribeFunc and SubscribeChan attach
// a bounded per-subscriber queue (internal/eventbus) drained by its own
// goroutine, so events matched by classifyBatch are handed to consumer
// code without the publish path ever waiting on it. Enqueueing happens
// in Broker.dispatch, strictly after classifyBatch has released every
// gateway lock: a consumer can at worst slow the one publishing
// goroutine that opted into the Block policy, never the classify pass
// or other publishers.

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"

	"drtree/internal/core"
	"drtree/internal/eventbus"
	"drtree/internal/filter"
)

// OverflowPolicy selects what a subscriber's delivery queue does when it
// is full (see internal/eventbus).
type OverflowPolicy = eventbus.Policy

const (
	// DropOldest discards the oldest queued event to make room (default).
	DropOldest = eventbus.DropOldest
	// CoalesceByFilter keeps only the newest events for the subscriber's
	// filter under pressure: the incoming event replaces the oldest
	// queued one, counted as coalesced rather than dropped.
	CoalesceByFilter = eventbus.CoalesceByFilter
	// Block makes the publisher wait for queue space — opt-in lossless
	// backpressure that slows that one publishing call down.
	Block = eventbus.Block
)

// DefaultQueueDepth is the per-subscriber queue capacity used when
// WithQueueDepth is not given.
const DefaultQueueDepth = 256

// Envelope is one event delivered to a queue-backed subscriber.
type Envelope struct {
	// Seq numbers the subscriber's deliveries from 1 in enqueue order
	// (gaps appear where the overflow policy shed events).
	Seq uint64
	// Attempt counts the delivery attempts for this envelope: 1 on first
	// delivery, higher on at-least-once redeliveries.
	Attempt int
	// Event is the published event that matched the subscriber's filter.
	Event filter.Event
}

// Handler consumes one envelope on the subscriber's drainer goroutine.
// Under at-least-once delivery a nil return acknowledges the envelope
// and an error triggers redelivery; otherwise the return value only
// feeds the Failed counter.
type Handler func(Envelope) error

// deliveryConfig is the resolved delivery configuration of one
// queue-backed subscriber: broker-wide defaults overridden by the
// call's DeliveryOptions (see options.go for the option constructors).
type deliveryConfig struct {
	depth        int
	policy       OverflowPolicy
	atLeastOnce  bool
	maxRedeliver int
}

// consumer is the delivery side of one queue-backed subscriber.
type consumer struct {
	q      *eventbus.Queue[Envelope]
	policy OverflowPolicy
	seq    atomic.Uint64
}

// pending is one delivery owed after a classify pass: collected under
// the gateway read locks, enqueued after they are all released.
type pending struct {
	cons *consumer
	ev   filter.Event
}

// dispatch enqueues the deliveries a classify pass produced. An
// ErrClosed here means the subscriber unsubscribed concurrently with the
// publish — the event is simply not owed anymore.
func (b *Broker) dispatch(pend []pending) {
	for _, p := range pend {
		_ = p.cons.q.Enqueue(Envelope{Seq: p.cons.seq.Add(1), Event: p.ev})
	}
}

// resolveDelivery layers the call's options over the broker-wide
// defaults set at construction.
func (b *Broker) resolveDelivery(opts []DeliveryOption) (deliveryConfig, error) {
	cfg := b.defaultDelivery
	for _, opt := range opts {
		if err := opt.applyDelivery(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func newConsumer(cfg deliveryConfig) (*consumer, error) {
	q, err := eventbus.New(eventbus.Config[Envelope]{
		Capacity: cfg.depth,
		Policy:   cfg.policy,
		// Each broker subscriber has exactly one filter, so every
		// envelope in its queue shares the coalescing key: under
		// pressure CoalesceByFilter keeps the newest events.
		KeyOf:        func(Envelope) string { return "" },
		AtLeastOnce:  cfg.atLeastOnce,
		MaxRedeliver: cfg.maxRedeliver,
	})
	if err != nil {
		return nil, err
	}
	return &consumer{q: q, policy: cfg.policy}, nil
}

// SubscribeFunc registers subscriber id with the given filter and a
// handler invoked on the subscriber's own drainer goroutine for every
// event that matches. The handler can be arbitrarily slow — or never
// return — without stalling publishers, other subscribers, or
// Unsubscribe/Close; the overflow policy decides what happens to events
// arriving while it lags.
func (b *Broker) SubscribeFunc(id core.ProcID, f filter.Filter, h Handler, opts ...DeliveryOption) error {
	if h == nil {
		return fmt.Errorf("pubsub: nil handler")
	}
	cfg, err := b.resolveDelivery(opts)
	if err != nil {
		return err
	}
	cons, err := newConsumer(cfg)
	if err != nil {
		return err
	}
	if err := b.subscribe(id, f, cons, true); err != nil {
		cons.q.Close()
		return err
	}
	cons.q.Run(func(e Envelope, attempt int) error {
		e.Attempt = attempt
		return h(e)
	})
	return nil
}

// SubscribeChan registers subscriber id with the given filter and
// returns a channel of matching events. The channel is unbuffered — the
// subscriber's queue provides the buffering — and is closed when the
// subscriber is unsubscribed or the broker closes. A receiver that
// stops reading leaves the drainer blocked on the send (events shed per
// the overflow policy meanwhile) until then. At-least-once delivery is
// not available here: a channel receive cannot acknowledge, so
// WithAtLeastOnce is rejected.
func (b *Broker) SubscribeChan(id core.ProcID, f filter.Filter, opts ...DeliveryOption) (<-chan Envelope, error) {
	cons, ch, err := b.newChanConsumer(opts)
	if err != nil {
		return nil, err
	}
	if err := b.subscribe(id, f, cons, true); err != nil {
		cons.q.Close()
		return nil, err
	}
	b.runChanConsumer(cons, ch)
	return ch, nil
}

// newChanConsumer builds the consumer and channel shared by
// SubscribeChan and AttachChan, rejecting at-least-once (a channel
// receive cannot acknowledge).
func (b *Broker) newChanConsumer(opts []DeliveryOption) (*consumer, chan Envelope, error) {
	cfg, err := b.resolveDelivery(opts)
	if err != nil {
		return nil, nil, err
	}
	if cfg.atLeastOnce {
		return nil, nil, fmt.Errorf("pubsub: at-least-once delivery needs an acknowledging handler; use SubscribeFunc")
	}
	cons, err := newConsumer(cfg)
	if err != nil {
		return nil, nil, err
	}
	return cons, make(chan Envelope), nil
}

// runChanConsumer starts the drainer feeding ch and the closer that
// ends it when the subscriber goes away.
func (b *Broker) runChanConsumer(cons *consumer, ch chan Envelope) {
	cons.q.Run(func(e Envelope, attempt int) error {
		e.Attempt = attempt
		select {
		case ch <- e:
			return nil
		case <-cons.q.Stopping():
			return eventbus.ErrClosed
		}
	})
	go func() {
		<-cons.q.Done()
		close(ch)
	}()
}

// attach installs a consumer on an existing record-only subscription —
// the re-attach half of durable sessions: Recover rebuilds
// subscriptions without delivery queues, and the returning client
// re-binds by subscription ID. Consumers are deliberately not
// journaled: a queue cannot outlive its process, so after a restart
// every recovered subscription is record-only until its owner attaches.
func (b *Broker) attach(id core.ProcID, cons *consumer) error {
	gw := b.owner(id)
	if gw == nil {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	sub, ok := gw.subs[id]
	if !ok {
		return fmt.Errorf("pubsub: subscriber %d not registered", id)
	}
	if sub.cons != nil {
		return fmt.Errorf("pubsub: subscriber %d already has a consumer attached", id)
	}
	sub.cons = cons
	gw.subs[id] = sub
	e := gw.entries[sub.key]
	es := e.subs[id]
	es.cons = cons
	e.subs[id] = es
	return nil
}

// AttachFunc binds a handler to an existing record-only subscription
// (typically one rebuilt by Recover). Delivery semantics match
// SubscribeFunc; the subscription's filter is unchanged. Fails if id is
// not registered or already has a consumer.
func (b *Broker) AttachFunc(id core.ProcID, h Handler, opts ...DeliveryOption) error {
	if h == nil {
		return fmt.Errorf("pubsub: nil handler")
	}
	cfg, err := b.resolveDelivery(opts)
	if err != nil {
		return err
	}
	cons, err := newConsumer(cfg)
	if err != nil {
		return err
	}
	if err := b.attach(id, cons); err != nil {
		cons.q.Close()
		return err
	}
	cons.q.Run(func(e Envelope, attempt int) error {
		e.Attempt = attempt
		return h(e)
	})
	return nil
}

// AttachChan binds a delivery channel to an existing record-only
// subscription. Delivery semantics match SubscribeChan.
func (b *Broker) AttachChan(id core.ProcID, opts ...DeliveryOption) (<-chan Envelope, error) {
	cons, ch, err := b.newChanConsumer(opts)
	if err != nil {
		return nil, err
	}
	if err := b.attach(id, cons); err != nil {
		cons.q.Close()
		return nil, err
	}
	b.runChanConsumer(cons, ch)
	return ch, nil
}

// SubscribeFuncExpr is SubscribeFunc with a textual filter
// (filter.Parse syntax).
func (b *Broker) SubscribeFuncExpr(id core.ProcID, src string, h Handler, opts ...DeliveryOption) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.SubscribeFunc(id, f, h, opts...)
}

// DeliveryStats is a point-in-time snapshot of one subscriber's
// delivery queue (embedding the queue's eventbus counters).
type DeliveryStats struct {
	// ID is the subscriber.
	ID core.ProcID
	// Policy is the queue's overflow policy.
	Policy OverflowPolicy
	eventbus.Stats
}

// DeliveryStats snapshots every queue-backed subscriber's delivery
// counters, ascending by subscriber ID. Record-only subscribers
// (Subscribe) have no queue and do not appear.
func (b *Broker) DeliveryStats() []DeliveryStats {
	var out []DeliveryStats
	for _, gw := range b.poolSnapshot() {
		gw.mu.RLock()
		for id, sub := range gw.subs {
			if sub.cons == nil {
				continue
			}
			out = append(out, DeliveryStats{ID: id, Policy: sub.cons.policy, Stats: sub.cons.q.Stats()})
		}
		gw.mu.RUnlock()
	}
	slices.SortFunc(out, func(a, b DeliveryStats) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// DeliveryStatsOf snapshots one subscriber's delivery counters; ok is
// false when id is not a queue-backed subscriber.
func (b *Broker) DeliveryStatsOf(id core.ProcID) (DeliveryStats, bool) {
	gw := b.owner(id)
	if gw == nil {
		return DeliveryStats{}, false
	}
	gw.mu.RLock()
	defer gw.mu.RUnlock()
	sub, ok := gw.subs[id]
	if !ok || sub.cons == nil {
		return DeliveryStats{}, false
	}
	return DeliveryStats{ID: id, Policy: sub.cons.policy, Stats: sub.cons.q.Stats()}, true
}
