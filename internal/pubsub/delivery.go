package pubsub

// The subscriber delivery layer: SubscribeFunc and SubscribeChan attach
// a bounded per-subscriber queue (internal/eventbus) drained by its own
// goroutine, so events matched by classifyBatch are handed to consumer
// code without the publish path ever waiting on it. Enqueueing happens
// in Broker.dispatch, strictly after classifyBatch has released every
// gateway lock: a consumer can at worst slow the one publishing
// goroutine that opted into the Block policy, never the classify pass
// or other publishers.

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"

	"drtree/internal/core"
	"drtree/internal/eventbus"
	"drtree/internal/filter"
)

// OverflowPolicy selects what a subscriber's delivery queue does when it
// is full (see internal/eventbus).
type OverflowPolicy = eventbus.Policy

const (
	// DropOldest discards the oldest queued event to make room (default).
	DropOldest = eventbus.DropOldest
	// CoalesceByFilter keeps only the newest events for the subscriber's
	// filter under pressure: the incoming event replaces the oldest
	// queued one, counted as coalesced rather than dropped.
	CoalesceByFilter = eventbus.CoalesceByFilter
	// Block makes the publisher wait for queue space — opt-in lossless
	// backpressure that slows that one publishing call down.
	Block = eventbus.Block
)

// DefaultQueueDepth is the per-subscriber queue capacity used when
// WithQueueDepth is not given.
const DefaultQueueDepth = 256

// Envelope is one event delivered to a queue-backed subscriber.
type Envelope struct {
	// Seq numbers the subscriber's deliveries from 1 in enqueue order
	// (gaps appear where the overflow policy shed events).
	Seq uint64
	// Attempt counts the delivery attempts for this envelope: 1 on first
	// delivery, higher on at-least-once redeliveries.
	Attempt int
	// Event is the published event that matched the subscriber's filter.
	Event filter.Event
}

// Handler consumes one envelope on the subscriber's drainer goroutine.
// Under at-least-once delivery a nil return acknowledges the envelope
// and an error triggers redelivery; otherwise the return value only
// feeds the Failed counter.
type Handler func(Envelope) error

// DeliveryOption configures a queue-backed subscription.
type DeliveryOption func(*deliveryConfig) error

type deliveryConfig struct {
	depth        int
	policy       OverflowPolicy
	atLeastOnce  bool
	maxRedeliver int
}

// WithQueueDepth sets the subscriber's queue capacity (default
// DefaultQueueDepth).
func WithQueueDepth(n int) DeliveryOption {
	return func(c *deliveryConfig) error {
		if n < 1 {
			return fmt.Errorf("pubsub: queue depth must be >= 1, got %d", n)
		}
		c.depth = n
		return nil
	}
}

// WithOverflowPolicy sets the queue's overflow policy (default
// DropOldest).
func WithOverflowPolicy(p OverflowPolicy) DeliveryOption {
	return func(c *deliveryConfig) error {
		switch p {
		case DropOldest, CoalesceByFilter, Block:
			c.policy = p
			return nil
		}
		return fmt.Errorf("pubsub: unknown overflow policy %v", p)
	}
}

// WithAtLeastOnce turns on ack-based delivery: an envelope occupies its
// queue slot until the handler returns nil, and a failed attempt is
// retried up to maxRedeliver times before the envelope is dropped.
func WithAtLeastOnce(maxRedeliver int) DeliveryOption {
	return func(c *deliveryConfig) error {
		if maxRedeliver < 0 {
			return fmt.Errorf("pubsub: max redeliveries must be >= 0, got %d", maxRedeliver)
		}
		c.atLeastOnce = true
		c.maxRedeliver = maxRedeliver
		return nil
	}
}

// consumer is the delivery side of one queue-backed subscriber.
type consumer struct {
	q      *eventbus.Queue[Envelope]
	policy OverflowPolicy
	seq    atomic.Uint64
}

// pending is one delivery owed after a classify pass: collected under
// the gateway read locks, enqueued after they are all released.
type pending struct {
	cons *consumer
	ev   filter.Event
}

// dispatch enqueues the deliveries a classify pass produced. An
// ErrClosed here means the subscriber unsubscribed concurrently with the
// publish — the event is simply not owed anymore.
func (b *Broker) dispatch(pend []pending) {
	for _, p := range pend {
		_ = p.cons.q.Enqueue(Envelope{Seq: p.cons.seq.Add(1), Event: p.ev})
	}
}

func newConsumer(opts []DeliveryOption) (*consumer, error) {
	cfg := deliveryConfig{depth: DefaultQueueDepth, policy: DropOldest}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	q, err := eventbus.New(eventbus.Config[Envelope]{
		Capacity: cfg.depth,
		Policy:   cfg.policy,
		// Each broker subscriber has exactly one filter, so every
		// envelope in its queue shares the coalescing key: under
		// pressure CoalesceByFilter keeps the newest events.
		KeyOf:        func(Envelope) string { return "" },
		AtLeastOnce:  cfg.atLeastOnce,
		MaxRedeliver: cfg.maxRedeliver,
	})
	if err != nil {
		return nil, err
	}
	return &consumer{q: q, policy: cfg.policy}, nil
}

// SubscribeFunc registers subscriber id with the given filter and a
// handler invoked on the subscriber's own drainer goroutine for every
// event that matches. The handler can be arbitrarily slow — or never
// return — without stalling publishers, other subscribers, or
// Unsubscribe/Close; the overflow policy decides what happens to events
// arriving while it lags.
func (b *Broker) SubscribeFunc(id core.ProcID, f filter.Filter, h Handler, opts ...DeliveryOption) error {
	if h == nil {
		return fmt.Errorf("pubsub: nil handler")
	}
	cons, err := newConsumer(opts)
	if err != nil {
		return err
	}
	if err := b.subscribe(id, f, cons); err != nil {
		cons.q.Close()
		return err
	}
	cons.q.Run(func(e Envelope, attempt int) error {
		e.Attempt = attempt
		return h(e)
	})
	return nil
}

// SubscribeChan registers subscriber id with the given filter and
// returns a channel of matching events. The channel is unbuffered — the
// subscriber's queue provides the buffering — and is closed when the
// subscriber is unsubscribed or the broker closes. A receiver that
// stops reading leaves the drainer blocked on the send (events shed per
// the overflow policy meanwhile) until then. At-least-once delivery is
// not available here: a channel receive cannot acknowledge, so
// WithAtLeastOnce is rejected.
func (b *Broker) SubscribeChan(id core.ProcID, f filter.Filter, opts ...DeliveryOption) (<-chan Envelope, error) {
	cfg := deliveryConfig{depth: DefaultQueueDepth, policy: DropOldest}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.atLeastOnce {
		return nil, fmt.Errorf("pubsub: at-least-once delivery needs an acknowledging handler; use SubscribeFunc")
	}
	cons, err := newConsumer(opts)
	if err != nil {
		return nil, err
	}
	if err := b.subscribe(id, f, cons); err != nil {
		cons.q.Close()
		return nil, err
	}
	ch := make(chan Envelope)
	cons.q.Run(func(e Envelope, attempt int) error {
		e.Attempt = attempt
		select {
		case ch <- e:
			return nil
		case <-cons.q.Stopping():
			return eventbus.ErrClosed
		}
	})
	go func() {
		<-cons.q.Done()
		close(ch)
	}()
	return ch, nil
}

// SubscribeFuncExpr is SubscribeFunc with a textual filter
// (filter.Parse syntax).
func (b *Broker) SubscribeFuncExpr(id core.ProcID, src string, h Handler, opts ...DeliveryOption) error {
	f, err := filter.Parse(src)
	if err != nil {
		return err
	}
	return b.SubscribeFunc(id, f, h, opts...)
}

// DeliveryStats is a point-in-time snapshot of one subscriber's
// delivery queue (embedding the queue's eventbus counters).
type DeliveryStats struct {
	// ID is the subscriber.
	ID core.ProcID
	// Policy is the queue's overflow policy.
	Policy OverflowPolicy
	eventbus.Stats
}

// DeliveryStats snapshots every queue-backed subscriber's delivery
// counters, ascending by subscriber ID. Record-only subscribers
// (Subscribe) have no queue and do not appear.
func (b *Broker) DeliveryStats() []DeliveryStats {
	var out []DeliveryStats
	for _, gw := range b.gws {
		gw.mu.RLock()
		for id, sub := range gw.subs {
			if sub.cons == nil {
				continue
			}
			out = append(out, DeliveryStats{ID: id, Policy: sub.cons.policy, Stats: sub.cons.q.Stats()})
		}
		gw.mu.RUnlock()
	}
	slices.SortFunc(out, func(a, b DeliveryStats) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// DeliveryStatsOf snapshots one subscriber's delivery counters; ok is
// false when id is not a queue-backed subscriber.
func (b *Broker) DeliveryStatsOf(id core.ProcID) (DeliveryStats, bool) {
	gw := b.gateway(id)
	gw.mu.RLock()
	defer gw.mu.RUnlock()
	sub, ok := gw.subs[id]
	if !ok || sub.cons == nil {
		return DeliveryStats{}, false
	}
	return DeliveryStats{ID: id, Policy: sub.cons.policy, Stats: sub.cons.q.Stats()}, true
}
