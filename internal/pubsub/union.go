package pubsub

// Incremental MBR-union maintenance for a gateway's unique-rectangle
// set. The gateway's overlay filter is the fold of Rect.Union over its
// match entries; recomputing that fold on every departure is O(entries)
// and was the broker's last linear cost on continuous-motion workloads.
// Instead the gateway keeps, per dimension and per side, the number of
// entries that attain the current union boundary. A rectangle strictly
// inside the union adds and removes in O(d); only when a departing
// rectangle was the *last* one attaining some boundary does the union
// actually change, and only then is the O(entries) fold re-run (counted
// in fullReunions, which the drift-workload tests pin to zero for
// contained moves).
//
// The maintained union is bit-identical to the naive fold at all times
// (certified by TestUnionBitIdenticalToOracle), including the signed-
// zero corner: math.Min(-0, +0) = -0 and math.Max(-0, +0) = +0, so a
// boundary sitting exactly at zero can change its *bit pattern* (not
// its value) when a contributor leaves. Attainment is counted
// numerically (−0 == +0), and any departure from a zero boundary takes
// the full-fold path, which reproduces the fold's sign exactly.

import "drtree/internal/geom"

// unionPeekAdd returns the union the gateway will cover once a new
// entry with rectangle r is added, without committing anything. Callers
// consult the engine with this value first (engine-first discipline).
func (gw *gateway) unionPeekAdd(r geom.Rect) geom.Rect {
	return gw.union.Union(r)
}

// unionCommitAdd folds a new entry's rectangle into the maintained
// union and its boundary-attainment counts. Call once per *entry*
// (equivalent filters share an entry and contribute once), with gw.mu
// held, after the entry is committed.
func (gw *gateway) unionCommitAdd(r geom.Rect) {
	d := r.Dims()
	if gw.union.IsEmpty() {
		gw.union = r
		gw.loAt = make([]int, d)
		gw.hiAt = make([]int, d)
		for i := 0; i < d; i++ {
			gw.loAt[i], gw.hiAt[i] = 1, 1
		}
		return
	}
	u := gw.union.Union(r)
	for i := 0; i < d; i++ {
		switch {
		case r.Lo(i) < gw.union.Lo(i):
			gw.loAt[i] = 1
		case r.Lo(i) == gw.union.Lo(i):
			gw.loAt[i]++
		}
		switch {
		case r.Hi(i) > gw.union.Hi(i):
			gw.hiAt[i] = 1
		case r.Hi(i) == gw.union.Hi(i):
			gw.hiAt[i]++
		}
	}
	gw.union = u
}

// unionPeekRemove returns the union the gateway will cover once skip's
// rectangle leaves, and whether committing that requires a full fold.
// A rectangle attaining no boundary leaves the union untouched in O(d);
// a boundary departure (or any departure from a boundary sitting at
// exactly zero, where the fold's signed-zero choice must be re-derived)
// recomputes the fold over the surviving entries.
func (gw *gateway) unionPeekRemove(skip *matchEntry) (geom.Rect, bool) {
	r := skip.rect
	for i := 0; i < r.Dims(); i++ {
		if r.Lo(i) == gw.union.Lo(i) && (gw.loAt[i] == 1 || gw.union.Lo(i) == 0) {
			return gw.unionWithout(skip), true
		}
		if r.Hi(i) == gw.union.Hi(i) && (gw.hiAt[i] == 1 || gw.union.Hi(i) == 0) {
			return gw.unionWithout(skip), true
		}
	}
	return gw.union, false
}

// unionCommitRemove applies a peeked removal: u and full must come from
// unionPeekRemove for the same entry. On the fast path only the counts
// move; on the full path the union is replaced and the counts are
// recounted (skip may still be present in gw.entries and is excluded).
func (gw *gateway) unionCommitRemove(skip *matchEntry, u geom.Rect, full bool) {
	if !full {
		r := skip.rect
		for i := 0; i < r.Dims(); i++ {
			if r.Lo(i) == gw.union.Lo(i) {
				gw.loAt[i]--
			}
			if r.Hi(i) == gw.union.Hi(i) {
				gw.hiAt[i]--
			}
		}
		return
	}
	gw.fullReunions++
	gw.union = u
	gw.recountBounds(skip)
}

// unionReset clears the union state (the gateway lost its last entry).
func (gw *gateway) unionReset() {
	gw.union = geom.Rect{}
	gw.loAt, gw.hiAt = nil, nil
}

// unionRebuild recomputes the union fold and the attainment counts from
// the entry set — the pool-reorganization path (gateway splits and
// drains move whole entry groups, where incremental bookkeeping buys
// nothing). Not counted in fullReunions: that counter isolates the
// subscription churn path the incremental union exists to make O(d).
func (gw *gateway) unionRebuild() {
	gw.union = gw.recomputeUnion()
	gw.recountBounds(nil)
}

// recountBounds recounts boundary attainment against the current union,
// excluding skip (which may still be in the map mid-removal).
func (gw *gateway) recountBounds(skip *matchEntry) {
	if gw.union.IsEmpty() {
		gw.loAt, gw.hiAt = nil, nil
		return
	}
	d := gw.union.Dims()
	gw.loAt = make([]int, d)
	gw.hiAt = make([]int, d)
	for _, e := range gw.entries {
		if e == skip {
			continue
		}
		for i := 0; i < d; i++ {
			if e.rect.Lo(i) == gw.union.Lo(i) {
				gw.loAt[i]++
			}
			if e.rect.Hi(i) == gw.union.Hi(i) {
				gw.hiAt[i]++
			}
		}
	}
}
