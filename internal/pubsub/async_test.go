package pubsub

// Tests for the daemon-facing surface: gateway base renumbering, the
// push-side NotifyGateway entry point, and fire-and-forget publishing
// over an engine with the AsyncPublisher capability.

import (
	"errors"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/proto"
)

func TestWithGatewayBaseValidation(t *testing.T) {
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(filter.MustSpace("price"), tree, WithGatewayBase(0)); err == nil {
		t.Error("gateway base 0 must be rejected")
	}
	if _, err := New(filter.MustSpace("price"), tree, WithGatewayBase(-7)); err == nil {
		t.Error("negative gateway base must be rejected")
	}
}

func TestGatewayBaseNumbering(t *testing.T) {
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(filter.MustSpace("price", "qty"), tree, WithGateways(4), WithGatewayBase(50))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range b.GatewayStats() {
		if want := core.ProcID(50 + i); st.ProcID != want {
			t.Fatalf("gateway %d has procID %d, want %d", i, st.ProcID, want)
		}
	}
	// GatewayOf agrees with the subscriber->gateway hash.
	for id := core.ProcID(1); id <= 8; id++ {
		if want := core.ProcID(50 + int(id)%4); b.GatewayOf(id) != want {
			t.Fatalf("GatewayOf(%d) = %d, want %d", id, b.GatewayOf(id), want)
		}
	}
}

func TestNotifyGatewayDelivers(t *testing.T) {
	b := newBroker(t)
	ch, err := b.SubscribeChan(1, filter.MustParse("price in [10, 20] && qty in [1, 5]"))
	if err != nil {
		t.Fatal(err)
	}
	// A record-only subscriber on the same gateway counts as matched but
	// has no queue.
	gws := b.Gateways()
	other := core.ProcID(1 + gws) // same gateway as subscriber 1
	if err := b.SubscribeExpr(other, "price in [0, 100]"); err != nil {
		t.Fatal(err)
	}

	ev := filter.Event{"price": 15, "qty": 3}
	if n := b.NotifyGateway(b.GatewayOf(1), ev); n != 2 {
		t.Fatalf("NotifyGateway = %d, want 2 matched", n)
	}
	select {
	case e := <-ch:
		if e.Event["price"] != 15 {
			t.Fatalf("delivered %v", e.Event)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queue-backed subscriber never received the notified event")
	}

	// Unknown gateway process and malformed events deliver nothing.
	if n := b.NotifyGateway(0, ev); n != 0 {
		t.Fatalf("NotifyGateway(0) = %d, want 0", n)
	}
	if n := b.NotifyGateway(core.ProcID(9999), ev); n != 0 {
		t.Fatalf("NotifyGateway(9999) = %d, want 0", n)
	}
	if n := b.NotifyGateway(b.GatewayOf(1), filter.Event{"price": 15}); n != 0 {
		t.Fatalf("NotifyGateway with a partial event = %d, want 0", n)
	}
	// Non-matching event: classified, nobody interested.
	if n := b.NotifyGateway(b.GatewayOf(1), filter.Event{"price": 999, "qty": 999}); n != 0 {
		t.Fatalf("NotifyGateway with a non-matching event = %d, want 0", n)
	}
}

func TestPublishAsyncRequiresCapability(t *testing.T) {
	b := newBroker(t) // sequential engine: no AsyncPublisher
	if err := b.SubscribeExpr(1, "price in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishAsync(1, filter.Event{"price": 5, "qty": 1}); err == nil {
		t.Fatal("PublishAsync over the sequential engine must be refused")
	}
}

// TestPublishAsyncEndToEnd wires the live runtime's event hook to
// NotifyGateway — exactly the daemon's bridge — and checks an async
// publish reaches a queue-backed subscriber with no synchronous census.
func TestPublishAsyncEndToEnd(t *testing.T) {
	lc, err := proto.NewLiveCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	space := filter.MustSpace("price", "qty")
	b, err := New(space, lc, WithGateways(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	lc.SetEventHook(func(proc core.ProcID, _ int64, ev geom.Point, matched bool) {
		if !matched {
			return
		}
		e, err := space.Event(ev)
		if err != nil {
			return
		}
		b.NotifyGateway(proc, e)
	})

	if err := b.PublishAsync(1, filter.Event{"price": 1, "qty": 1}); !errors.Is(err, ErrProducerNotRegistered) {
		t.Fatalf("unregistered producer: err = %v", err)
	}

	ch, err := b.SubscribeChan(1, filter.MustParse("price in [10, 20] && qty in [1, 5]"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "price in [500, 600]"); err != nil {
		t.Fatal(err)
	}

	if err := b.PublishAsync(1, filter.Event{"price": 15, "qty": 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.Event["price"] != 15 || e.Event["qty"] != 2 {
			t.Fatalf("delivered %v", e.Event)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("async publish never reached the subscriber")
	}

	// A non-matching event must not arrive.
	if err := b.PublishAsync(1, filter.Event{"price": 400, "qty": 400}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		t.Fatalf("unexpected delivery %v", e.Event)
	case <-time.After(300 * time.Millisecond):
	}
}
