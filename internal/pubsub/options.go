package pubsub

// The broker's one coherent option surface. Historically Option (a bare
// func over brokerConfig) and DeliveryOption (a bare func over
// deliveryConfig) were disjoint types: New took only the former,
// Subscribe* only the latter, and broker-wide delivery defaults were
// impossible to express. Both are now interfaces with private apply
// hooks, and every DeliveryOption is also an Option: passed to New it
// sets the broker-wide default that per-subscription options then
// override. WithStore and WithSnapshotEvery join the same set to make
// the broker durable.

import (
	"fmt"

	"drtree/internal/core"
	"drtree/internal/state"
)

// Option configures a Broker at construction. Every DeliveryOption is
// also an Option (a broker-wide delivery default), so New accepts one
// flat option list.
type Option interface {
	applyBroker(*brokerConfig) error
}

// DeliveryOption configures a queue-backed subscription. Passed to a
// Subscribe/Attach call it configures that subscriber; passed to New it
// sets the broker-wide default.
type DeliveryOption interface {
	Option
	applyDelivery(*deliveryConfig) error
}

type brokerConfig struct {
	gateways      int
	gatewaysSet   bool
	policy        *gatewayPolicy
	gwBase        core.ProcID
	store         state.Store
	snapshotEvery int
	delivery      deliveryConfig
}

// brokerOption adapts a plain function into an Option.
type brokerOption func(*brokerConfig) error

func (o brokerOption) applyBroker(c *brokerConfig) error { return o(c) }

// deliveryOption adapts a plain function into a DeliveryOption; applied
// at the broker level it edits the broker-wide delivery defaults.
type deliveryOption func(*deliveryConfig) error

func (o deliveryOption) applyBroker(c *brokerConfig) error     { return o(&c.delivery) }
func (o deliveryOption) applyDelivery(c *deliveryConfig) error { return o(c) }

// WithGateways sets the gateway pool size: the number of overlay
// processes the broker's subscribers share (default DefaultGateways).
// More gateways mean smaller per-gateway match indexes and tighter
// overlay filters; fewer mean a smaller overlay.
func WithGateways(n int) Option {
	return brokerOption(func(c *brokerConfig) error {
		if n < 1 {
			return fmt.Errorf("pubsub: gateway count must be >= 1, got %d", n)
		}
		c.gateways = n
		c.gatewaysSet = true
		return nil
	})
}

// WithGatewayPolicy replaces the fixed pool with an adaptive one: the
// pool starts at min gateways, a gateway reaching target subscriptions
// splits its entry set onto a new overlay member (up to max gateways),
// and a gateway draining far below target hands its entries to its
// peers and retires from the overlay. Subscriptions are placed on the
// gateway whose MBR-union they enlarge least, so the pool stays
// spatially coherent and the top-level routing tree prunes classify
// work (Notification.GatewayVisited). Pool membership and subscription
// assignment changes are journaled on a durable broker; Recover
// rebuilds the exact pre-crash pool and assignment. Mutually exclusive
// with WithGateways.
func WithGatewayPolicy(target, min, max int) Option {
	return brokerOption(func(c *brokerConfig) error {
		if target < 1 {
			return fmt.Errorf("pubsub: gateway target load must be >= 1, got %d", target)
		}
		if min < 1 {
			return fmt.Errorf("pubsub: gateway pool floor must be >= 1, got %d", min)
		}
		if max < min {
			return fmt.Errorf("pubsub: gateway pool ceiling %d below floor %d", max, min)
		}
		c.policy = &gatewayPolicy{target: target, min: min, max: max}
		return nil
	})
}

// WithGatewayBase sets the overlay process ID of the first gateway;
// gateway i of the pool becomes process base+i (default base 1, the
// historical numbering). Daemons hosting slices of one shared overlay
// give each broker a disjoint base so gateway IDs never collide across
// machines.
func WithGatewayBase(base core.ProcID) Option {
	return brokerOption(func(c *brokerConfig) error {
		if base <= core.NoProc {
			return fmt.Errorf("pubsub: gateway base must be positive, got %d", base)
		}
		c.gwBase = base
		return nil
	})
}

// WithStore makes the broker durable: every Subscribe, Unsubscribe and
// UpdateFilter is journaled to s before the call returns, and a broker
// constructed over the same store later rebuilds the subscription set
// with Recover. The broker does not own the store's lifetime; close it
// after the broker.
func WithStore(s state.Store) Option {
	return brokerOption(func(c *brokerConfig) error {
		if s == nil {
			return fmt.Errorf("pubsub: nil store")
		}
		c.store = s
		return nil
	})
}

// WithSnapshotEvery sets the checkpoint cadence of a durable broker: a
// snapshot+compact cycle runs in the background after every n journaled
// operations (default DefaultSnapshotEvery; 0 disables automatic
// checkpoints — Checkpoint can still be called explicitly).
func WithSnapshotEvery(n int) Option {
	return brokerOption(func(c *brokerConfig) error {
		if n < 0 {
			return fmt.Errorf("pubsub: snapshot cadence must be >= 0, got %d", n)
		}
		c.snapshotEvery = n
		return nil
	})
}

// WithQueueDepth sets the subscriber's queue capacity (default
// DefaultQueueDepth).
func WithQueueDepth(n int) DeliveryOption {
	return deliveryOption(func(c *deliveryConfig) error {
		if n < 1 {
			return fmt.Errorf("pubsub: queue depth must be >= 1, got %d", n)
		}
		c.depth = n
		return nil
	})
}

// WithOverflowPolicy sets the queue's overflow policy (default
// DropOldest).
func WithOverflowPolicy(p OverflowPolicy) DeliveryOption {
	return deliveryOption(func(c *deliveryConfig) error {
		switch p {
		case DropOldest, CoalesceByFilter, Block:
			c.policy = p
			return nil
		}
		return fmt.Errorf("pubsub: unknown overflow policy %v", p)
	})
}

// WithAtLeastOnce turns on ack-based delivery: an envelope occupies its
// queue slot until the handler returns nil, and a failed attempt is
// retried up to maxRedeliver times before the envelope is dropped.
func WithAtLeastOnce(maxRedeliver int) DeliveryOption {
	return deliveryOption(func(c *deliveryConfig) error {
		if maxRedeliver < 0 {
			return fmt.Errorf("pubsub: max redeliveries must be >= 0, got %d", maxRedeliver)
		}
		c.atLeastOnce = true
		c.maxRedeliver = maxRedeliver
		return nil
	})
}
