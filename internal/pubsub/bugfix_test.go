package pubsub

// Regression tests for broker edge-case bugs: each test exercises a
// failure interleaving that used to corrupt broker state (permanent
// false negatives, stranded gateways, duplicate match entries, raw
// engine errors leaking through the producer check).

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
	"drtree/internal/geom"
)

// flakyLeaveEngine hides FilterUpdater (embedding the interface narrows
// the method set) and fails the next failLeaves Leave calls.
type flakyLeaveEngine struct {
	engine.Engine
	failLeaves int
}

func (f *flakyLeaveEngine) Leave(id core.ProcID) error {
	if f.failLeaves > 0 {
		f.failLeaves--
		return fmt.Errorf("injected leave failure")
	}
	return f.Engine.Leave(id)
}

// faultIndex wraps a gateway's match index, counting Insert calls and
// failing the next failInserts of them. The old remove() rollback
// re-inserted the deleted entry through exactly this path and ignored
// the error — a failure there left the rectangle missing from the index
// while the subscription stayed registered: a permanent false negative.
type faultIndex struct {
	matchIndex
	insertCalls int
	failInserts int
}

func (fi *faultIndex) Insert(r geom.Rect, data any) error {
	fi.insertCalls++
	if fi.failInserts > 0 {
		fi.failInserts--
		return fmt.Errorf("injected index insert failure")
	}
	return fi.matchIndex.Insert(r, data)
}

// TestRemoveEngineRefusalLeavesNoFalseNegative certifies that a failed
// Unsubscribe mutates nothing: the engine is consulted before any local
// state changes, so the fallible index re-insert of the old rollback
// path no longer exists (the armed faultIndex proves it is never
// called), and the refused subscriber keeps receiving events.
func TestRemoveEngineRefusalLeavesNoFalseNegative(t *testing.T) {
	mk := func() (*Broker, *flakyLeaveEngine, *faultIndex) {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		fe := &flakyLeaveEngine{Engine: tree}
		b, err := New(filter.MustSpace("x"), fe, WithGateways(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
			t.Fatal(err)
		}
		// Arm the fault after the initial subscriptions: any Insert from
		// here on is a rollback re-insert, and it would fail.
		fi := &faultIndex{matchIndex: b.gws[0].index, failInserts: 1}
		b.gws[0].index = fi
		return b, fe, fi
	}

	// Last-subscription path: the gateway's Leave is refused.
	b, fe, fi := mk()
	fe.failLeaves = 1
	if err := b.Unsubscribe(1); err == nil {
		t.Fatal("refused engine Leave must surface as an error")
	}
	if fi.insertCalls != 0 {
		t.Fatalf("remove touched the match index %d times on the failure path", fi.insertCalls)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after refused Unsubscribe, want 1", b.Len())
	}
	n, err := b.Publish(1, filter.Event{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 1 || len(n.Received) != 1 || len(n.FalseNegatives) != 0 {
		t.Fatalf("subscriber lost after refused Unsubscribe: %+v", n)
	}
	// Engine healed: the retry completes cleanly.
	if err := b.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after healed Unsubscribe, want 0", b.Len())
	}

	// Filter-shrink path: the union move (leave/re-join fallback) is
	// refused while another subscription keeps the gateway alive.
	b, fe, fi = mk()
	fi.failInserts = 0 // disarm while the second subscription's entry is indexed
	if err := b.SubscribeExpr(2, "x in [50, 60]"); err != nil {
		t.Fatal(err)
	}
	fi.insertCalls, fi.failInserts = 0, 1
	fe.failLeaves = 1
	if err := b.Unsubscribe(2); err == nil {
		t.Fatal("refused filter move must surface as an error")
	}
	if fi.insertCalls != 0 {
		t.Fatalf("remove touched the match index %d times on the failure path", fi.insertCalls)
	}
	n, err = b.Publish(1, filter.Event{"x": 55})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 1 || n.Interested[0] != 2 || len(n.FalseNegatives) != 0 {
		t.Fatalf("subscriber 2 lost after refused Unsubscribe: %+v", n)
	}
	if err := b.Unsubscribe(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Engine().Filter(1); !got.Equal(geom.MustRect([]float64{0}, []float64{10})) {
		t.Fatalf("gateway filter %v after healed Unsubscribe, want [0,10]", got)
	}
}

// TestRepairRejoinsStrandedGateway: a gateway stranded by a double
// filter-move failure (marked unjoined with live subscriptions) is
// re-joined by Repair, not only by the next publish.
func TestRepairRejoinsStrandedGateway(t *testing.T) {
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	fe := &flakyJoinEngine{Engine: tree}
	b, err := New(filter.MustSpace("x"), fe, WithGateways(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	fe.failJoins = 2
	if err := b.SubscribeExpr(2, "x in [50, 60]"); err == nil {
		t.Fatal("double join failure must surface as an error")
	}
	if b.Engine().Len() != 0 {
		t.Fatalf("engine population %d after double join failure, want 0", b.Engine().Len())
	}
	if st := b.Repair(); b.Engine().Len() != 1 || !st.Converged {
		t.Fatalf("Repair did not re-join the stranded gateway (population %d, converged %v)", b.Engine().Len(), st.Converged)
	}
	if st := b.GatewayStats()[0]; !st.Joined || !st.Filter.Equal(geom.MustRect([]float64{0}, []float64{10})) {
		t.Fatalf("gateway state after Repair: %+v", st)
	}
	n, err := b.Publish(1, filter.Event{"x": 5})
	if err != nil || len(n.Interested) != 1 || len(n.FalseNegatives) != 0 {
		t.Fatalf("subscriber 1 not served after Repair re-join: %+v, %v", n, err)
	}
}

// TestRectKeyAgreesWithEqual is the property behind equivalent-filter
// dedup: two rectangles share a rectKey exactly when Rect.Equal says
// they are the same rectangle. The interesting case is negative zero
// (-0.0 == +0.0 but their bit patterns differ); the pool also covers
// infinities and ordinary values, pairwise.
func TestRectKeyAgreesWithEqual(t *testing.T) {
	vals := []float64{math.Inf(-1), -1.5, math.Copysign(0, -1), 0, 2.25, math.Inf(1)}
	var rects []geom.Rect
	for _, lo := range vals {
		for _, hi := range vals {
			if lo > hi {
				continue
			}
			rects = append(rects, geom.MustRect([]float64{lo}, []float64{hi}))
		}
	}
	rng := rand.New(rand.NewPCG(11, 42))
	for i := 0; i < 40; i++ {
		a, b := rng.Float64()*100-50, rng.Float64()*100-50
		rects = append(rects, geom.MustRect([]float64{math.Min(a, b)}, []float64{math.Max(a, b)}))
	}
	for i, a := range rects {
		for j, b := range rects {
			eq, keyEq := a.Equal(b), rectKey(a) == rectKey(b)
			if eq != keyEq {
				t.Errorf("rects %d %v and %d %v: Equal=%v but rectKey-equal=%v", i, a, j, b, eq, keyEq)
			}
		}
	}
}

// TestNegativeZeroFiltersShareEntry drives the same property end to
// end: filters whose rectangles differ only in the sign of zero must
// collapse into one match-index entry.
func TestNegativeZeroFiltersShareEntry(t *testing.T) {
	b, err := NewCore(filter.MustSpace("x"), core.Params{MinFanout: 2, MaxFanout: 4}, WithGateways(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(1, filter.Range("x", math.Copysign(0, -1), 10)); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(2, filter.Range("x", 0, 10)); err != nil {
		t.Fatal(err)
	}
	if st := b.GatewayStats()[0]; st.UniqueFilters != 1 {
		t.Fatalf("UniqueFilters = %d for ±0.0 twins, want 1 shared entry", st.UniqueFilters)
	}
	n, err := b.Publish(1, filter.Event{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Interested) != 2 || len(n.Received) != 2 {
		t.Fatalf("±0.0 twins classified %+v", n)
	}
}

// hookEngine runs a hook instead of the next PublishBatch call — the
// deterministic version of "the producer was unsubscribed between the
// broker's registered check and the engine call".
type hookEngine struct {
	engine.Engine
	hook func() error
}

func (h *hookEngine) PublishBatch(batch []core.Publication) ([]core.Delivery, error) {
	if h.hook != nil {
		hk := h.hook
		h.hook = nil
		if err := hk(); err != nil {
			return nil, err
		}
	}
	return h.Engine.PublishBatch(batch)
}

// TestPublishUnsubscribeRaceMapsToSentinel: when a concurrent
// Unsubscribe removes the producer after the registered check, the raw
// engine error is mapped to ErrProducerNotRegistered — callers see one
// error for one condition regardless of interleaving.
func TestPublishUnsubscribeRaceMapsToSentinel(t *testing.T) {
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	he := &hookEngine{Engine: tree}
	b, err := New(filter.MustSpace("x"), he, WithGateways(1))
	if err != nil {
		t.Fatal(err)
	}
	// Two subscribers sharing one filter: unsubscribing the producer
	// neither detaches the gateway nor moves its filter, so the hook's
	// Unsubscribe takes no engine call (the engine mutex is held by the
	// in-flight publish).
	if err := b.SubscribeExpr(1, "x in [0, 10]"); err != nil {
		t.Fatal(err)
	}
	if err := b.SubscribeExpr(2, "x in [0, 10]"); err != nil {
		t.Fatal(err)
	}

	// The early check uses the sentinel too.
	if _, err := b.Publish(99, filter.Event{"x": 5}); !errors.Is(err, ErrProducerNotRegistered) {
		t.Fatalf("unregistered producer: %v, want ErrProducerNotRegistered", err)
	}

	he.hook = func() error {
		if err := b.Unsubscribe(1); err != nil {
			return fmt.Errorf("hook unsubscribe: %v", err)
		}
		return fmt.Errorf("injected: unknown process 1")
	}
	if _, err := b.Publish(1, filter.Event{"x": 5}); !errors.Is(err, ErrProducerNotRegistered) {
		t.Fatalf("raced publish: %v, want ErrProducerNotRegistered", err)
	}

	// An engine error with the producer still registered stays a raw
	// engine error — the mapping is for the unsubscribe race only.
	he.hook = func() error { return fmt.Errorf("injected transient engine failure") }
	if _, err := b.Publish(2, filter.Event{"x": 5}); err == nil || errors.Is(err, ErrProducerNotRegistered) {
		t.Fatalf("unrelated engine error must not be masked: %v", err)
	}
}
