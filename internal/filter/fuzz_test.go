package filter

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

// grid returns a random constant that survives the %.4f rendering of
// Filter.String exactly, so parse → print → parse round-trips are exact.
func grid(rng *rand.Rand) float64 {
	return math.Round((rng.Float64()*2000-1000)*1e4) / 1e4
}

// TestPropertyParseRectStringRoundTrip: for random filters over grid
// constants, source → Parse → Rect and source → Parse → String → Parse →
// Rect agree exactly, and String∘Parse is idempotent (the canonical
// form).
func TestPropertyParseRectStringRoundTrip(t *testing.T) {
	space := MustSpace("a", "b", "c")
	ops := []Op{OpEq, OpLt, OpGt, OpLe, OpGe}
	for seed := uint64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewPCG(seed, 17))
		var preds []Predicate
		for k := 1 + rng.IntN(5); k > 0; k-- {
			preds = append(preds, Predicate{
				Attr:  []string{"a", "b", "c"}[rng.IntN(3)],
				Op:    ops[rng.IntN(len(ops))],
				Value: grid(rng),
			})
		}
		f := New(preds...)
		src := f.String()
		g, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: canonical form %q does not parse: %v", seed, src, err)
		}
		if got := g.String(); got != src {
			t.Fatalf("seed %d: String∘Parse not idempotent: %q -> %q", seed, src, got)
		}
		rf, errF := space.Rect(f)
		rg, errG := space.Rect(g)
		if (errF == nil) != (errG == nil) {
			t.Fatalf("seed %d: satisfiability diverged: %v vs %v", seed, errF, errG)
		}
		if errF == nil && !rf.Equal(rg) {
			t.Fatalf("seed %d: rect diverged: %v vs %v (src %q)", seed, rf, rg, src)
		}
	}
}

// TestPropertyRangeFormEquivalence: the "attr in [lo, hi]" sugar expands
// to exactly the two-predicate closed range.
func TestPropertyRangeFormEquivalence(t *testing.T) {
	space := MustSpace("x")
	for seed := uint64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewPCG(seed, 19))
		lo, hi := grid(rng), grid(rng)
		if lo > hi {
			lo, hi = hi, lo
		}
		sugar := MustParse(strings.ReplaceAll(
			strings.ReplaceAll("x in [LO, HI]", "LO", trimFloat(lo)), "HI", trimFloat(hi)))
		expanded := Range("x", lo, hi)
		rs, err1 := space.Rect(sugar)
		re, err2 := space.Rect(expanded)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", seed, err1, err2)
		}
		if !rs.Equal(re) {
			t.Fatalf("seed %d: in-form %v != range form %v", seed, rs, re)
		}
	}
}

// TestParseRejectsMalformed: the rejection surface, clause by clause.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"&&",
		"a > 1 &&",
		"&& a > 1",
		"price >",
		"price",
		"price ! 5",
		"price ~ 5",
		"price = x",
		"5 > price",
		"9price > 5",
		".price > 5",
		"pri ce > 5",
		"price > 5 6",
		"price = = 5",
		"a in [5, 1]",
		"a in [1 2]",
		"a in 1, 2]",
		"a in [1, 2",
		"a in [x, 2]",
		"a in [1, y]",
		"a in [1, 2, 3]",
		"a in []",
		"a <",
		"a <= ",
		"true && a > 1", // "true" is only valid alone
	}
	for _, src := range bad {
		if f, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted: %v", src, f)
		}
	}
}

// FuzzParse is the go test -fuzz entry: Parse must never panic, and any
// accepted input must have an idempotent canonical form that re-parses
// to the same predicates.
func FuzzParse(f *testing.F) {
	f.Add("true")
	f.Add("price >= 10 && price <= 20 && qty = 5")
	f.Add("x in [0, 40] && y in [10, 50]")
	f.Add("a<1&&b>2")
	f.Add("a in [1,2]")
	f.Add("_x.y <= -3.5e2")
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Parse(src)
		if err != nil {
			return
		}
		canon := flt.String()
		re, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if again := re.String(); again != canon {
			t.Fatalf("canonical form not stable: %q -> %q", canon, again)
		}
		a, b := flt.Predicates(), re.Predicates()
		if len(a) != len(b) {
			t.Fatalf("predicate count changed: %d -> %d", len(a), len(b))
		}
	})
}
