package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Filter from a textual conjunction of predicates.
//
// Grammar (informal):
//
//	filter  := "true" | clause { "&&" clause }
//	clause  := attr op number
//	         | attr "in" "[" number "," number "]"
//	op      := "=" | "==" | "<" | ">" | "<=" | ">="
//	attr    := identifier ([A-Za-z_][A-Za-z0-9_.]*)
//
// Examples:
//
//	price >= 10 && price <= 20 && qty = 5
//	x in [0, 40] && y in [10, 50]
//
// The "in" form expands to the two closed-range predicates of the paper's
// canonical complex filter (v_i < a < v_j written with inclusive bounds).
func Parse(src string) (Filter, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return Filter{}, fmt.Errorf("filter: empty source")
	}
	if src == "true" {
		return Filter{}, nil
	}
	var preds []Predicate
	for _, clause := range strings.Split(src, "&&") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return Filter{}, fmt.Errorf("filter: empty clause in %q", src)
		}
		ps, err := parseClause(clause)
		if err != nil {
			return Filter{}, err
		}
		preds = append(preds, ps...)
	}
	return Filter{preds: preds}, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(src string) Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func parseClause(clause string) ([]Predicate, error) {
	fields := tokenize(clause)
	if len(fields) < 3 {
		return nil, fmt.Errorf("filter: cannot parse clause %q", clause)
	}
	attr := fields[0]
	if !validIdent(attr) {
		return nil, fmt.Errorf("filter: invalid attribute name %q", attr)
	}
	switch fields[1] {
	case "in":
		// attr in [ lo , hi ]
		rest := strings.Join(fields[2:], "")
		if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
			return nil, fmt.Errorf("filter: malformed range in clause %q", clause)
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(rest, "["), "]")
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("filter: range needs two bounds in clause %q", clause)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("filter: bad lower bound in %q: %w", clause, err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("filter: bad upper bound in %q: %w", clause, err)
		}
		if lo > hi {
			return nil, fmt.Errorf("filter: inverted range [%g, %g] in %q", lo, hi, clause)
		}
		return []Predicate{
			{Attr: attr, Op: OpGe, Value: lo},
			{Attr: attr, Op: OpLe, Value: hi},
		}, nil
	case "=", "==", "<", ">", "<=", ">=":
		if len(fields) != 3 {
			return nil, fmt.Errorf("filter: trailing tokens in clause %q", clause)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("filter: bad constant in %q: %w", clause, err)
		}
		var op Op
		switch fields[1] {
		case "=", "==":
			op = OpEq
		case "<":
			op = OpLt
		case ">":
			op = OpGt
		case "<=":
			op = OpLe
		case ">=":
			op = OpGe
		}
		return []Predicate{{Attr: attr, Op: op, Value: v}}, nil
	default:
		return nil, fmt.Errorf("filter: unknown operator %q in clause %q", fields[1], clause)
	}
}

// tokenize splits a clause on whitespace but also separates operators and
// brackets glued to operands (e.g. "price>=10" -> ["price", ">=", "10"]).
func tokenize(clause string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	i := 0
	for i < len(clause) {
		c := clause[i]
		switch {
		case c == ' ' || c == '\t':
			flush()
			i++
		case c == '[' || c == ']' || c == ',':
			flush()
			out = append(out, string(c))
			i++
		case c == '<' || c == '>':
			flush()
			if i+1 < len(clause) && clause[i+1] == '=' {
				out = append(out, clause[i:i+2])
				i += 2
			} else {
				out = append(out, string(c))
				i++
			}
		case c == '=':
			flush()
			if i+1 < len(clause) && clause[i+1] == '=' {
				out = append(out, "==")
				i += 2
			} else {
				out = append(out, "=")
				i++
			}
		default:
			cur.WriteByte(c)
			i++
		}
	}
	flush()
	return out
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9', c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
