// Package filter implements the content-based filter model of the paper's
// Section 2.1: subscriptions are conjunctions of predicates over named
// numeric attributes, events are attribute/value dictionaries.
//
// Geometrically a filter is a poly-space rectangle and an event is a
// point; package filter compiles both into package geom types given an
// attribute Space (an ordered set of attribute names that fixes the
// dimensions).
package filter

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"drtree/internal/geom"
)

// Op is a comparison operator usable in a predicate. The set matches the
// paper's basic numeric operators {=, <, >, <=, >=}.
type Op int

// Supported predicate operators.
const (
	OpEq Op = iota + 1
	OpLt
	OpGt
	OpLe
	OpGe
)

// String returns the source form of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// eval applies the operator to (attributeValue, constant).
func (o Op) eval(x, v float64) bool {
	switch o {
	case OpEq:
		return x == v
	case OpLt:
		return x < v
	case OpGt:
		return x > v
	case OpLe:
		return x <= v
	case OpGe:
		return x >= v
	default:
		return false
	}
}

// Predicate is a single comparison f_i = (n_i op_i v_i) from the paper:
// attribute name, operator, constant.
type Predicate struct {
	Attr  string
	Op    Op
	Value float64
}

// String renders the predicate in source form, e.g. "price >= 10".
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, trimFloat(p.Value))
}

// Filter is a conjunction of predicates, S = f_1 ∧ ... ∧ f_j. The zero
// value matches every event (empty conjunction).
type Filter struct {
	preds []Predicate
}

// New builds a filter from predicates. Predicates are copied; the caller
// keeps ownership of the slice.
func New(preds ...Predicate) Filter {
	cp := make([]Predicate, len(preds))
	copy(cp, preds)
	return Filter{preds: cp}
}

// Range is a convenience constructor for the paper's common form
// (lo <= attr <= hi): a closed interval on one attribute.
func Range(attr string, lo, hi float64) Filter {
	return New(
		Predicate{Attr: attr, Op: OpGe, Value: lo},
		Predicate{Attr: attr, Op: OpLe, Value: hi},
	)
}

// And returns the conjunction of f and g.
func (f Filter) And(g Filter) Filter {
	out := make([]Predicate, 0, len(f.preds)+len(g.preds))
	out = append(out, f.preds...)
	out = append(out, g.preds...)
	return Filter{preds: out}
}

// Predicates returns a copy of the filter's predicates.
func (f Filter) Predicates() []Predicate {
	out := make([]Predicate, len(f.preds))
	copy(out, f.preds)
	return out
}

// Attrs returns the sorted set of attribute names the filter constrains.
func (f Filter) Attrs() []string {
	seen := make(map[string]bool, len(f.preds))
	var out []string
	for _, p := range f.preds {
		if !seen[p.Attr] {
			seen[p.Attr] = true
			out = append(out, p.Attr)
		}
	}
	slices.Sort(out)
	return out
}

// Match reports whether event e satisfies every predicate of f, using the
// exact operator semantics (strict inequalities stay strict). An event
// that does not define a constrained attribute does not match.
func (f Filter) Match(e Event) bool {
	for _, p := range f.preds {
		x, ok := e[p.Attr]
		if !ok || !p.Op.eval(x, p.Value) {
			return false
		}
	}
	return true
}

// Interval returns the closed interval [lo, hi] that f induces on attr;
// unconstrained sides are ±Inf. An unsatisfiable conjunction (e.g.
// a < 1 ∧ a > 2) yields ok == false.
func (f Filter) Interval(attr string) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(-1), math.Inf(1)
	for _, p := range f.preds {
		if p.Attr != attr {
			continue
		}
		switch p.Op {
		case OpEq:
			lo = math.Max(lo, p.Value)
			hi = math.Min(hi, p.Value)
		case OpLt, OpLe:
			hi = math.Min(hi, p.Value)
		case OpGt, OpGe:
			lo = math.Max(lo, p.Value)
		}
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// String renders the filter in source form, predicates joined by " && ".
// The always-true filter renders as "true".
func (f Filter) String() string {
	if len(f.preds) == 0 {
		return "true"
	}
	parts := make([]string, len(f.preds))
	for i, p := range f.preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " && ")
}

// Event carries the attribute/value pairs of a published message
// ("messages sent by publishers contain a set of attributes with
// associated values").
type Event map[string]float64

// Clone returns an independent copy of the event.
func (e Event) Clone() Event {
	out := make(Event, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// String renders the event deterministically (keys sorted).
func (e Event) String() string {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, trimFloat(e[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Space is an ordered attribute schema fixing the dimensions of the
// geometric embedding. Attribute i of the space is dimension i of every
// compiled rectangle and point.
type Space struct {
	names []string
	index map[string]int
}

// NewSpace builds a space over the given attribute names, in order. It
// returns an error on duplicates or an empty list.
func NewSpace(attrs ...string) (*Space, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("filter: space needs at least one attribute")
	}
	s := &Space{names: make([]string, len(attrs)), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("filter: duplicate attribute %q", a)
		}
		s.names[i] = a
		s.index[a] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on invalid input; for tests and
// constants.
func MustSpace(attrs ...string) *Space {
	s, err := NewSpace(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the dimensionality of the space.
func (s *Space) Dims() int { return len(s.names) }

// Attrs returns the attribute names in dimension order.
func (s *Space) Attrs() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Rect compiles filter f into its poly-space rectangle in s. Dimensions
// the filter does not constrain are unbounded (paper: "if one attribute is
// undefined, then the corresponding rectangle is unbounded in the
// associated dimension"). It returns an error if f constrains an attribute
// outside the space or is unsatisfiable.
func (s *Space) Rect(f Filter) (geom.Rect, error) {
	for _, p := range f.preds {
		if _, ok := s.index[p.Attr]; !ok {
			return geom.Rect{}, fmt.Errorf("filter: attribute %q not in space %v", p.Attr, s.names)
		}
	}
	lo := make([]float64, len(s.names))
	hi := make([]float64, len(s.names))
	for i, name := range s.names {
		l, h, ok := f.Interval(name)
		if !ok {
			return geom.Rect{}, fmt.Errorf("filter: unsatisfiable constraints on %q", name)
		}
		lo[i], hi[i] = l, h
	}
	return geom.NewRect(lo, hi)
}

// Point compiles event e into a point of s. Every attribute of the space
// must be defined by the event.
func (s *Space) Point(e Event) (geom.Point, error) {
	p := make(geom.Point, len(s.names))
	for i, name := range s.names {
		v, ok := e[name]
		if !ok {
			return nil, fmt.Errorf("filter: event %v does not define attribute %q", e, name)
		}
		p[i] = v
	}
	return p, nil
}

// Event is the inverse of Point: it rebuilds the attribute map of a
// point of s. Callers that observe events as raw overlay points (the
// network daemon's delivery hook) use it to recover the pub/sub view.
func (s *Space) Event(p geom.Point) (Event, error) {
	if len(p) != len(s.names) {
		return nil, fmt.Errorf("filter: point has %d dims, space %v has %d", len(p), s.names, len(s.names))
	}
	e := make(Event, len(s.names))
	for i, name := range s.names {
		e[name] = p[i]
	}
	return e, nil
}

// Contains reports subscription containment f ⊒ g within space s: every
// event matching g also matches f. It is decided geometrically on the
// compiled rectangles; closed-interval semantics are used, matching the
// paper's rectangle model.
func (s *Space) Contains(f, g Filter) (bool, error) {
	rf, err := s.Rect(f)
	if err != nil {
		return false, err
	}
	rg, err := s.Rect(g)
	if err != nil {
		return false, err
	}
	return rf.Contains(rg), nil
}

func trimFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
}
