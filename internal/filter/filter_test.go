package filter

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drtree/internal/geom"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpEq, "="}, {OpLt, "<"}, {OpGt, ">"}, {OpLe, "<="}, {OpGe, ">="}, {Op(99), "Op(99)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	f := New(
		Predicate{Attr: "price", Op: OpGe, Value: 10},
		Predicate{Attr: "price", Op: OpLt, Value: 20},
		Predicate{Attr: "qty", Op: OpEq, Value: 5},
	)
	tests := []struct {
		name string
		e    Event
		want bool
	}{
		{"inside", Event{"price": 15, "qty": 5}, true},
		{"lower edge inclusive", Event{"price": 10, "qty": 5}, true},
		{"upper edge strict", Event{"price": 20, "qty": 5}, false},
		{"wrong qty", Event{"price": 15, "qty": 6}, false},
		{"missing attr", Event{"price": 15}, false},
		{"extra attrs ok", Event{"price": 15, "qty": 5, "other": 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.Match(tt.e); got != tt.want {
				t.Fatalf("Match(%v) = %v, want %v", tt.e, got, tt.want)
			}
		})
	}
	if !(Filter{}).Match(Event{"anything": 1}) {
		t.Error("empty filter must match every event")
	}
}

func TestFilterInterval(t *testing.T) {
	f := MustParse("a >= 2 && a <= 8 && a < 6")
	lo, hi, ok := f.Interval("a")
	if !ok || lo != 2 || hi != 6 {
		t.Fatalf("Interval = [%g,%g] ok=%v, want [2,6] true", lo, hi, ok)
	}
	lo, hi, ok = f.Interval("unconstrained")
	if !ok || !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatalf("unconstrained Interval = [%g,%g] ok=%v", lo, hi, ok)
	}
	if _, _, ok := MustParse("a < 1 && a > 2").Interval("a"); ok {
		t.Fatal("unsatisfiable interval must report ok=false")
	}
	if lo, hi, ok := MustParse("a = 3").Interval("a"); !ok || lo != 3 || hi != 3 {
		t.Fatalf("equality Interval = [%g,%g] ok=%v, want [3,3]", lo, hi, ok)
	}
}

func TestFilterAndAttrsString(t *testing.T) {
	f := Range("x", 0, 10).And(Range("y", 5, 6))
	attrs := f.Attrs()
	if len(attrs) != 2 || attrs[0] != "x" || attrs[1] != "y" {
		t.Fatalf("Attrs = %v", attrs)
	}
	want := "x >= 0 && x <= 10 && y >= 5 && y <= 6"
	if got := f.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := (Filter{}).String(); got != "true" {
		t.Fatalf("empty filter String = %q", got)
	}
}

func TestPredicatesCopySemantics(t *testing.T) {
	preds := []Predicate{{Attr: "a", Op: OpEq, Value: 1}}
	f := New(preds...)
	preds[0].Value = 99
	if f.Predicates()[0].Value != 1 {
		t.Fatal("New must copy predicate slice at the boundary")
	}
	got := f.Predicates()
	got[0].Value = 42
	if f.Predicates()[0].Value != 1 {
		t.Fatal("Predicates must return a copy")
	}
}

func TestSpaceBasics(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty space must be rejected")
	}
	if _, err := NewSpace("a", "a"); err == nil {
		t.Error("duplicate attribute must be rejected")
	}
	s := MustSpace("x", "y")
	if s.Dims() != 2 {
		t.Fatalf("Dims = %d", s.Dims())
	}
	attrs := s.Attrs()
	attrs[0] = "mutated"
	if s.Attrs()[0] != "x" {
		t.Fatal("Attrs must return a copy")
	}
}

func TestSpaceRect(t *testing.T) {
	s := MustSpace("x", "y")
	r, err := s.Rect(MustParse("x in [0, 40] && y in [10, 50]"))
	if err != nil {
		t.Fatal(err)
	}
	if want := geom.R2(0, 10, 40, 50); !r.Equal(want) {
		t.Fatalf("Rect = %v, want %v", r, want)
	}

	// Unconstrained dimension becomes unbounded.
	r, err = s.Rect(MustParse("x in [1, 2]"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Lo(1), -1) || !math.IsInf(r.Hi(1), 1) {
		t.Fatalf("unconstrained dim not unbounded: %v", r)
	}

	if _, err := s.Rect(MustParse("z = 1")); err == nil {
		t.Error("attribute outside space must error")
	}
	if _, err := s.Rect(MustParse("x < 0 && x > 1")); err == nil {
		t.Error("unsatisfiable filter must error")
	}
}

func TestSpacePoint(t *testing.T) {
	s := MustSpace("x", "y")
	p, err := s.Point(Event{"x": 3, "y": 4, "ignored": 9})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(geom.Point{3, 4}) {
		t.Fatalf("Point = %v", p)
	}
	if _, err := s.Point(Event{"x": 3}); err == nil {
		t.Error("event missing a space attribute must error")
	}
}

func TestSpaceContains(t *testing.T) {
	s := MustSpace("x", "y")
	outer := MustParse("x in [0, 100] && y in [0, 100]")
	inner := MustParse("x in [10, 20] && y in [10, 20]")
	if ok, err := s.Contains(outer, inner); err != nil || !ok {
		t.Fatalf("Contains(outer, inner) = %v, %v", ok, err)
	}
	if ok, err := s.Contains(inner, outer); err != nil || ok {
		t.Fatalf("Contains(inner, outer) = %v, %v; want false", ok, err)
	}
	// A filter leaving y free contains one that binds y to a subrange of x-range.
	free := MustParse("x in [0, 50]")
	bound := MustParse("x in [10, 20] && y in [1, 2]")
	if ok, _ := s.Contains(free, bound); !ok {
		t.Fatal("filter with unbounded dim must contain constrained sub-filter")
	}
	if _, err := s.Contains(MustParse("z = 1"), inner); err == nil {
		t.Error("bad attribute must surface an error")
	}
}

func TestEventCloneString(t *testing.T) {
	e := Event{"b": 2, "a": 1}
	c := e.Clone()
	c["a"] = 99
	if e["a"] != 1 {
		t.Fatal("Clone aliases original")
	}
	if got := e.String(); got != "{a=1, b=2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseValid(t *testing.T) {
	tests := []struct {
		src   string
		event Event
		want  bool
	}{
		{"true", Event{"x": 1}, true},
		{"price >= 10 && price <= 20", Event{"price": 15}, true},
		{"price >= 10 && price <= 20", Event{"price": 25}, false},
		{"price>=10", Event{"price": 10}, true},
		{"x in [0, 5]", Event{"x": 5}, true},
		{"x in [0, 5]", Event{"x": 5.01}, false},
		{"x in [0,5] && y in [1,2]", Event{"x": 1, "y": 1.5}, true},
		{"qty == 3", Event{"qty": 3}, true},
		{"qty = 3", Event{"qty": 2}, false},
		{"a < 5", Event{"a": 4.999}, true},
		{"a < 5", Event{"a": 5}, false},
		{"a > -1.5", Event{"a": 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			f, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.src, err)
			}
			if got := f.Match(tt.event); got != tt.want {
				t.Fatalf("Parse(%q).Match(%v) = %v, want %v", tt.src, tt.event, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"x",
		"x >",
		"x ? 3",
		"x in [1, 2",
		"x in [1]",
		"x in [2, 1]",
		"x in [a, b]",
		"x = notanumber",
		"1x = 3",
		"x = 3 && ",
		"x = 3 extra",
		"&& x = 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := MustParse("x >= 1 && x <= 2 && y = 3")
	g, err := Parse(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != g.String() {
		t.Fatalf("round trip mismatch: %q vs %q", f.String(), g.String())
	}
}

func TestPropertyRectConsistentWithMatch(t *testing.T) {
	// For closed-range filters, geometric point containment must agree
	// exactly with predicate evaluation.
	s := MustSpace("x", "y")
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		x1, x2 := rng.Float64()*100, rng.Float64()*100
		y1, y2 := rng.Float64()*100, rng.Float64()*100
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		fl := Range("x", x1, x2).And(Range("y", y1, y2))
		r, err := s.Rect(fl)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			e := Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
			p, err := s.Point(e)
			if err != nil {
				return false
			}
			if fl.Match(e) != r.ContainsPoint(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentMatchesSubsetSemantics(t *testing.T) {
	// If Contains(f, g) then every event matching g matches f
	// (the definitional property of subscription containment, §2.1).
	s := MustSpace("x", "y")
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 8))
		f := Range("x", 10, 60).And(Range("y", 10, 60))
		gx1 := 10 + rng.Float64()*25
		gy1 := 10 + rng.Float64()*25
		g := Range("x", gx1, gx1+rng.Float64()*25).And(Range("y", gy1, gy1+rng.Float64()*25))
		ok, err := s.Contains(f, g)
		if err != nil || !ok {
			return false
		}
		for i := 0; i < 20; i++ {
			e := Event{"x": rng.Float64() * 100, "y": rng.Float64() * 100}
			if g.Match(e) && !f.Match(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
