// Package enginetest is the shared conformance suite for Engine
// implementations: one fixed, seeded schedule of joins, leaves, crashes,
// transient corruptions and probe publishes, replayed through any
// backend and certified at every checkpoint against independently
// computed ground truth — membership, root MBR = filter union, a legal
// configuration, zero false negatives, and exactly the ground-truth
// true-positive delivery sets. Because every engine is held to the same
// ground truth, any two conforming engines certify identical deliveries
// and legality verdicts; the cross-engine test compares the recorded
// transcripts directly as well.
//
// Adding a conformance row for a new engine is one Factory entry in the
// consuming test.
package enginetest

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/geom"
)

// Factory builds a fresh, empty engine for one suite run. The suite
// closes the engine when the test finishes.
type Factory func(t *testing.T) engine.Engine

// Checkpoint records the observable outcome of one quiescent window of
// the fixed schedule.
type Checkpoint struct {
	Label   string
	Members []core.ProcID
	RootMBR geom.Rect
	Legal   bool
	// Deliveries holds the true-positive receiver set of each probe
	// publish in the window, in schedule order.
	Deliveries [][]core.ProcID
	// BatchDeliveries holds the true-positive receiver sets of the same
	// probes re-published as one PublishBatch call; a conforming engine's
	// batch path delivers exactly like its sequential path.
	BatchDeliveries [][]core.ProcID
}

// Transcript is the full observable outcome of the schedule, built from
// what the engine reported (its ProcIDs, RootMBR, legality verdict and
// TruePositive delivery sets). Run fatally asserts each observation
// against ground truth, so two engines that both pass produce equal
// transcripts; the cross-engine Equal comparison is a redundant second
// certification layer (and the tool for comparing a not-yet-conforming
// engine's behaviour against a reference).
type Transcript struct {
	Checkpoints []Checkpoint
}

// Equal reports whether two transcripts agree checkpoint by checkpoint.
func (tr *Transcript) Equal(other *Transcript) error {
	if len(tr.Checkpoints) != len(other.Checkpoints) {
		return fmt.Errorf("checkpoint counts differ: %d vs %d", len(tr.Checkpoints), len(other.Checkpoints))
	}
	for i, a := range tr.Checkpoints {
		b := other.Checkpoints[i]
		if a.Legal != b.Legal {
			return fmt.Errorf("checkpoint %s: legality verdicts differ (%v vs %v)", a.Label, a.Legal, b.Legal)
		}
		if !slices.Equal(a.Members, b.Members) {
			return fmt.Errorf("checkpoint %s: memberships differ (%v vs %v)", a.Label, a.Members, b.Members)
		}
		if !a.RootMBR.Equal(b.RootMBR) {
			return fmt.Errorf("checkpoint %s: root MBRs differ (%v vs %v)", a.Label, a.RootMBR, b.RootMBR)
		}
		if len(a.Deliveries) != len(b.Deliveries) {
			return fmt.Errorf("checkpoint %s: probe counts differ", a.Label)
		}
		for k := range a.Deliveries {
			if !slices.Equal(a.Deliveries[k], b.Deliveries[k]) {
				return fmt.Errorf("checkpoint %s probe %d: deliveries differ (%v vs %v)",
					a.Label, k, a.Deliveries[k], b.Deliveries[k])
			}
		}
		if len(a.BatchDeliveries) != len(b.BatchDeliveries) {
			return fmt.Errorf("checkpoint %s: batch probe counts differ", a.Label)
		}
		for k := range a.BatchDeliveries {
			if !slices.Equal(a.BatchDeliveries[k], b.BatchDeliveries[k]) {
				return fmt.Errorf("checkpoint %s batch probe %d: deliveries differ (%v vs %v)",
					a.Label, k, a.BatchDeliveries[k], b.BatchDeliveries[k])
			}
		}
	}
	return nil
}

// suite drives the schedule and accumulates the transcript.
type suite struct {
	t    *testing.T
	eng  engine.Engine
	live map[core.ProcID]geom.Rect
	tr   *Transcript
}

// Run replays the fixed schedule through the engine built by mk,
// failing the test on any conformance violation and returning the
// transcript for cross-engine comparison.
func Run(t *testing.T, mk Factory) *Transcript {
	t.Helper()
	eng := mk(t)
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("enginetest: Close: %v", err)
		}
	})
	s := &suite{t: t, eng: eng, live: map[core.ProcID]geom.Rect{}, tr: &Transcript{}}

	// The schedule is seeded and fixed: every engine sees byte-identical
	// operations.
	rng := rand.New(rand.NewPCG(0xD27EE, 99))
	rect := func() geom.Rect {
		x, y := rng.Float64()*100, rng.Float64()*100
		return geom.R2(x, y, x+5+rng.Float64()*25, y+5+rng.Float64()*25)
	}
	probe := func() geom.Point { return geom.Point{rng.Float64() * 130, rng.Float64() * 130} }

	// Phase 1: population build-up.
	for i := 1; i <= 12; i++ {
		s.join(core.ProcID(i), rect())
	}
	probesA := []geom.Point{probe(), probe(), probe(), {20, 20}, {60, 60}}
	s.checkpoint("A/built", probesA)

	// Phase 2: controlled departures and crashes.
	s.leave(3)
	s.leave(7)
	s.crash(5)
	s.crash(11)
	probesB := []geom.Point{probe(), probe(), {40, 40}, probe()}
	s.checkpoint("B/churned", probesB)

	// Phase 3: transient state corruption (the paper's fault model) on
	// surviving processes, at height 0 (which every live process owns).
	s.corruptParent(2, 0, 9)
	s.corruptMBR(6, 0, geom.R2(0, 0, 1, 1))
	s.corruptParent(9, 0, 9)
	probesC := []geom.Point{probe(), {25, 75}, probe()}
	s.checkpoint("C/corrupted", probesC)

	// Phase 4: late arrivals, one through an explicit contact.
	s.join(21, rect())
	s.joinFrom(2, 22, rect())
	probesD := []geom.Point{probe(), probe(), {80, 30}}
	s.checkpoint("D/rejoined", probesD)

	// Phase 5: engine-level filter updates (the FilterUpdater
	// capability): one filter grows, one shrinks to its lower quarter,
	// one moves to a disjoint region. The checkpoint then certifies
	// post-update legality, root MBR = union of the *updated* filters,
	// and zero false negatives — including probes aimed at the moved and
	// grown regions, which only deliver correctly if the MBR change
	// propagated all the way to the root.
	s.updateFilter(4, s.live[4].Union(geom.R2(100, 100, 120, 120)))
	old6 := s.live[6]
	s.updateFilter(6, geom.R2(old6.Lo(0), old6.Lo(1),
		(old6.Lo(0)+old6.Hi(0))/2, (old6.Lo(1)+old6.Hi(1))/2))
	s.updateFilter(10, geom.R2(140, 10, 160, 30))
	probesE := []geom.Point{{110, 110}, {150, 20}, old6.Center(), probe(), probe()}
	s.checkpoint("E/refiltered", probesE)

	return s.tr
}

func (s *suite) join(id core.ProcID, f geom.Rect) {
	s.t.Helper()
	if err := s.eng.Join(id, f); err != nil {
		s.t.Fatalf("enginetest: join %d: %v", id, err)
	}
	s.live[id] = f
}

func (s *suite) joinFrom(contact, id core.ProcID, f geom.Rect) {
	s.t.Helper()
	if err := s.eng.JoinFrom(contact, id, f); err != nil {
		s.t.Fatalf("enginetest: join %d from %d: %v", id, contact, err)
	}
	s.live[id] = f
}

func (s *suite) leave(id core.ProcID) {
	s.t.Helper()
	if err := s.eng.Leave(id); err != nil {
		s.t.Fatalf("enginetest: leave %d: %v", id, err)
	}
	delete(s.live, id)
}

func (s *suite) crash(id core.ProcID) {
	s.t.Helper()
	if err := s.eng.Crash(id); err != nil {
		s.t.Fatalf("enginetest: crash %d: %v", id, err)
	}
	delete(s.live, id)
}

func (s *suite) updateFilter(id core.ProcID, f geom.Rect) {
	s.t.Helper()
	fu, ok := s.eng.(engine.FilterUpdater)
	if !ok {
		s.t.Fatalf("enginetest: engine does not implement FilterUpdater")
	}
	if err := fu.UpdateFilter(id, f); err != nil {
		s.t.Fatalf("enginetest: update filter of %d: %v", id, err)
	}
	s.live[id] = f
}

func (s *suite) corruptParent(id core.ProcID, h int, parent core.ProcID) {
	s.t.Helper()
	if err := s.eng.CorruptParent(id, h, parent); err != nil {
		s.t.Fatalf("enginetest: corrupt parent (%d,%d): %v", id, h, err)
	}
}

func (s *suite) corruptMBR(id core.ProcID, h int, mbr geom.Rect) {
	s.t.Helper()
	if err := s.eng.CorruptMBR(id, h, mbr); err != nil {
		s.t.Fatalf("enginetest: corrupt MBR (%d,%d): %v", id, h, err)
	}
}

func (s *suite) members() []core.ProcID {
	ids := make([]core.ProcID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

func (s *suite) matching(ev geom.Point) []core.ProcID {
	var out []core.ProcID
	for _, id := range s.members() {
		if s.live[id].ContainsPoint(ev) {
			out = append(out, id)
		}
	}
	return out
}

// checkpoint drives the engine to quiescence and certifies the window:
// convergence, legality, membership, filters, root MBR = filter union,
// and ground-truth deliveries for every probe.
func (s *suite) checkpoint(label string, probes []geom.Point) {
	s.t.Helper()
	if st := s.eng.Stabilize(); !st.Converged {
		s.t.Fatalf("enginetest: %s: stabilization did not converge (%+v): %v", label, st, s.eng.CheckLegal())
	}
	err := s.eng.CheckLegal()
	if err != nil {
		s.t.Fatalf("enginetest: %s: illegal configuration: %v", label, err)
	}
	cp := Checkpoint{Label: label, Legal: err == nil}

	want := s.members()
	cp.Members = s.eng.ProcIDs()
	if !slices.Equal(cp.Members, want) {
		s.t.Fatalf("enginetest: %s: membership %v, want %v", label, cp.Members, want)
	}
	if n := s.eng.Len(); n != len(want) {
		s.t.Fatalf("enginetest: %s: Len %d, want %d", label, n, len(want))
	}
	var union geom.Rect
	for _, id := range want {
		f, ok := s.eng.Filter(id)
		if !ok || !f.Equal(s.live[id]) {
			s.t.Fatalf("enginetest: %s: filter of %d = %v (ok=%v), want %v", label, id, f, ok, s.live[id])
		}
		union = union.Union(s.live[id])
	}
	cp.RootMBR = s.eng.RootMBR()
	if len(want) > 0 && !cp.RootMBR.Equal(union) {
		s.t.Fatalf("enginetest: %s: root MBR %v, want filter union %v", label, cp.RootMBR, union)
	}
	if root, h := s.eng.Root(); len(want) > 0 && (root == core.NoProc || h < 0) {
		s.t.Fatalf("enginetest: %s: no root in a non-empty overlay", label)
	}

	for k, ev := range probes {
		producer := want[(k*5)%len(want)]
		d, err := s.eng.Publish(producer, ev)
		if err != nil {
			s.t.Fatalf("enginetest: %s probe %d: publish: %v", label, k, err)
		}
		truth := s.matching(ev)
		// TruePositives == ground truth certifies both zero false
		// negatives and exact delivery agreement across engines.
		if !slices.Equal(d.TruePositives, truth) {
			s.t.Fatalf("enginetest: %s probe %d (%v from %d): true positives %v, want %v",
				label, k, ev, producer, d.TruePositives, truth)
		}
		// Record what the engine reported, not the ground truth, so the
		// transcript is an observation of the engine under test.
		cp.Deliveries = append(cp.Deliveries, d.TruePositives)
	}

	// Batch certification: the same probes re-published as one
	// PublishBatch call must deliver exactly like the sequential publishes
	// above — the batch pipeline is an amortization, never a semantic
	// change.
	batch := make([]core.Publication, len(probes))
	for k, ev := range probes {
		batch[k] = core.Publication{Producer: want[(k*5)%len(want)], Event: ev}
	}
	ds, err := s.eng.PublishBatch(batch)
	if err != nil {
		s.t.Fatalf("enginetest: %s: publish batch: %v", label, err)
	}
	if len(ds) != len(probes) {
		s.t.Fatalf("enginetest: %s: batch returned %d deliveries for %d probes", label, len(ds), len(probes))
	}
	for k := range ds {
		truth := s.matching(probes[k])
		if !slices.Equal(ds[k].TruePositives, truth) {
			s.t.Fatalf("enginetest: %s batch probe %d (%v): true positives %v, want %v",
				label, k, probes[k], ds[k].TruePositives, truth)
		}
		if !slices.Equal(ds[k].TruePositives, cp.Deliveries[k]) {
			s.t.Fatalf("enginetest: %s batch probe %d: batch delivery %v diverges from sequential %v",
				label, k, ds[k].TruePositives, cp.Deliveries[k])
		}
		cp.BatchDeliveries = append(cp.BatchDeliveries, ds[k].TruePositives)
	}
	s.tr.Checkpoints = append(s.tr.Checkpoints, cp)
}
