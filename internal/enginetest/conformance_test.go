package enginetest

import (
	"math/rand/v2"
	"testing"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/proto"
)

// factories is the conformance matrix: every Engine implementation in
// the repository. A future backend joins the certification by adding one
// row here.
var factories = map[string]Factory{
	"core": func(t *testing.T) engine.Engine {
		tr, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	},
	"proto": func(t *testing.T) engine.Engine {
		cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		cl.Net().Rand = rand.New(rand.NewPCG(7, 7))
		return cl
	},
	"live": func(t *testing.T) engine.Engine {
		lc, err := proto.NewLiveCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		return lc
	},
}

// TestConformance certifies every engine against the fixed seeded
// schedule's ground truth.
func TestConformance(t *testing.T) {
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) { Run(t, mk) })
	}
}

// TestCrossEngineTranscripts certifies that all engines produce
// identical observable transcripts — memberships, root MBRs, legality
// verdicts and delivery sets — for the fixed schedule.
func TestCrossEngineTranscripts(t *testing.T) {
	ref := Run(t, factories["core"])
	for _, name := range []string{"proto", "live"} {
		got := Run(t, factories[name])
		if err := ref.Equal(got); err != nil {
			t.Errorf("core vs %s: %v", name, err)
		}
	}
}
