// Package drtree is the public API of the DR-tree library: a
// decentralized, self-stabilizing R-tree overlay for peer-to-peer
// content-based publish/subscribe, reproducing Bianchi, Datta, Felber,
// Gradinariu, "Stabilizing Peer-to-Peer Spatial Filters" (ICDCS 2007).
//
// The facade re-exports the stable surface of the internal packages:
//
//   - Tree / Params — the DR-tree overlay engine (internal/core):
//     joins, controlled leaves, crashes, stabilization, event
//     dissemination, legality checking.
//   - Broker — the publish/subscribe front end (internal/pubsub) over a
//     predicate language (internal/filter).
//   - Rect / Point — the poly-space geometry (internal/geom).
//
// Quick start:
//
//	tree, _ := drtree.NewTree(drtree.Params{MinFanout: 2, MaxFanout: 4})
//	tree.Join(1, drtree.R2(0, 0, 10, 10))
//	tree.Join(2, drtree.R2(5, 5, 20, 20))
//	delivery, _ := tree.Publish(1, drtree.Point{7, 7})
//
// See examples/ for runnable programs and DESIGN.md for the paper
// reproduction map.
package drtree

import (
	"drtree/internal/core"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/pubsub"
)

// Geometry re-exports.
type (
	// Rect is an axis-aligned poly-space rectangle (a compiled filter).
	Rect = geom.Rect
	// Point is an event location.
	Point = geom.Point
)

// R2 builds a two-dimensional rectangle from two corners.
func R2(x1, y1, x2, y2 float64) Rect { return geom.R2(x1, y1, x2, y2) }

// NewRect builds an n-dimensional rectangle from per-dimension bounds.
func NewRect(lo, hi []float64) (Rect, error) { return geom.NewRect(lo, hi) }

// Overlay re-exports.
type (
	// Tree is the DR-tree overlay.
	Tree = core.Tree
	// Params configures a Tree.
	Params = core.Params
	// ProcID identifies a subscriber process.
	ProcID = core.ProcID
	// JoinStats reports join costs.
	JoinStats = core.JoinStats
	// LeaveStats reports departure repair costs.
	LeaveStats = core.LeaveStats
	// StabStats reports stabilization work.
	StabStats = core.StabStats
	// Delivery reports one event dissemination.
	Delivery = core.Delivery
	// Election is a parent/root election policy.
	Election = core.Election
	// LargestMBR is the paper's election rule (Figure 6).
	LargestMBR = core.LargestMBR
)

// NewTree creates an empty DR-tree overlay.
func NewTree(p Params) (*Tree, error) { return core.New(p) }

// Publish/subscribe re-exports.
type (
	// Broker is the content-based publish/subscribe front end.
	Broker = pubsub.Broker
	// Filter is a conjunction of attribute predicates.
	Filter = filter.Filter
	// Event is an attribute/value message.
	Event = filter.Event
	// Space is an ordered attribute schema.
	Space = filter.Space
	// Notification reports one publication.
	Notification = pubsub.Notification
)

// NewSpace builds an attribute space over the given names.
func NewSpace(attrs ...string) (*Space, error) { return filter.NewSpace(attrs...) }

// NewBroker creates a publish/subscribe broker over space with the given
// overlay parameters.
func NewBroker(space *Space, p Params) (*Broker, error) { return pubsub.New(space, p) }

// ParseFilter parses the textual predicate language, e.g.
// "price in [10, 20] && qty >= 3".
func ParseFilter(src string) (Filter, error) { return filter.Parse(src) }
