// Package drtree is the public API of the DR-tree library: a
// decentralized, self-stabilizing R-tree overlay for peer-to-peer
// content-based publish/subscribe, reproducing Bianchi, Datta, Felber,
// Gradinariu, "Stabilizing Peer-to-Peer Spatial Filters" (ICDCS 2007).
//
// The central abstraction is Engine: the paper's DR-tree rules behind
// one interface, implemented three times —
//
//   - EngineCore — the sequential specification (internal/core): every
//     protocol rule as a directly callable state transition.
//   - EngineProto — the wire protocol (internal/proto) on a simulated
//     network with deterministic message rounds, drops, delays and
//     partitions.
//   - EngineLive — the same protocol actors as free-running goroutines
//     with real mailboxes and timers.
//
// Open builds an engine from functional options; Broker (the
// content-based publish/subscribe front end) and the drtree-sim /
// drtree-bench tools run over any of them.
//
// Quick start:
//
//	eng, _ := drtree.Open(drtree.WithFanout(2, 4))
//	eng.Join(1, drtree.R2(0, 0, 10, 10))
//	eng.Join(2, drtree.R2(5, 5, 20, 20))
//	delivery, _ := eng.Publish(1, drtree.Point{7, 7})
//	batch, _ := eng.PublishBatch([]drtree.Publication{
//		{Producer: 1, Event: drtree.Point{7, 7}},
//		{Producer: 2, Event: drtree.Point{12, 12}},
//	})
//
// See examples/ for runnable programs and DESIGN.md for the paper
// reproduction map.
package drtree

import (
	"fmt"
	"math/rand/v2"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/pubsub"
	"drtree/internal/split"
	"drtree/internal/state"
)

// Geometry re-exports.
type (
	// Rect is an axis-aligned poly-space rectangle (a compiled filter).
	Rect = geom.Rect
	// Point is an event location.
	Point = geom.Point
)

// R2 builds a two-dimensional rectangle from two corners.
func R2(x1, y1, x2, y2 float64) Rect { return geom.R2(x1, y1, x2, y2) }

// NewRect builds an n-dimensional rectangle from per-dimension bounds.
func NewRect(lo, hi []float64) (Rect, error) { return geom.NewRect(lo, hi) }

// Engine re-exports: the unified overlay interface and its optional
// capabilities.
type (
	// Engine is a DR-tree overlay backend; see Open.
	Engine = engine.Engine
	// NetworkedEngine is the capability of engines backed by an
	// inspectable simulated network (message drops, delays, partitions,
	// traffic counters). Satisfied by EngineProto.
	NetworkedEngine = engine.NetworkedEngine
	// SteppedEngine is the capability of deterministic round-based
	// engines (advance one message round at a time). Satisfied by
	// EngineProto.
	SteppedEngine = engine.SteppedEngine
	// FilterUpdater is the capability of engines that can change a live
	// subscriber's filter in place (UpdateFilter), without a
	// leave/re-join cycle. Satisfied by all three built-in engines; the
	// Broker's gateway layer uses it to move each gateway's aggregate
	// filter as subscriptions come and go.
	FilterUpdater = engine.FilterUpdater
	// AsyncPublisher is the capability of engines that can start a
	// dissemination without waiting for it to finish (InjectEvent).
	// Satisfied by EngineLive; Broker.PublishAsync requires it, and
	// networked daemons use it so a publish RPC returns as soon as the
	// event enters the overlay.
	AsyncPublisher = engine.AsyncPublisher
)

// Overlay re-exports.
type (
	// Tree is the sequential DR-tree engine (the EngineCore backend),
	// exposed for callers that need its full surface beyond Engine.
	Tree = core.Tree
	// Params configures a Tree.
	Params = core.Params
	// ProcID identifies a subscriber process.
	ProcID = core.ProcID
	// JoinStats reports join costs (Tree.JoinWithStats).
	JoinStats = core.JoinStats
	// LeaveStats reports departure repair costs (Tree.LeaveWithStats).
	LeaveStats = core.LeaveStats
	// StabReport is the unified stabilization result of Engine.Stabilize.
	StabReport = core.StabReport
	// Delivery is the unified dissemination result of Engine.Publish.
	Delivery = core.Delivery
	// Publication is one entry of an Engine.PublishBatch batch: an event
	// and the process that produces it. Batches keep multiple events in
	// flight at once (shared scratch in the sequential engine, shared
	// round budget on the wire, pipelined injection in the live runtime)
	// while delivering exactly like sequential publishes.
	Publication = core.Publication
	// Election is a parent/root election policy.
	Election = core.Election
	// LargestMBR is the paper's election rule (Figure 6).
	LargestMBR = core.LargestMBR
)

// NoProc is the zero ProcID, used as "no process".
const NoProc = core.NoProc

// EngineKind names an Engine backend for Open and the -engine CLI flags.
type EngineKind string

const (
	// EngineCore is the sequential specification engine.
	EngineCore EngineKind = "core"
	// EngineProto is the wire protocol on a deterministic simulated
	// network (rounds, drops, delays, partitions).
	EngineProto EngineKind = "proto"
	// EngineLive is the wire protocol as goroutine-per-node actors with
	// real mailboxes and timers.
	EngineLive EngineKind = "live"
)

// ParseEngineKind parses a -engine flag value.
func ParseEngineKind(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case EngineCore, EngineProto, EngineLive:
		return EngineKind(s), nil
	}
	return "", fmt.Errorf("drtree: unknown engine %q (want core, proto or live)", s)
}

// openConfig collects the Open options.
type openConfig struct {
	kind       EngineKind
	minFanout  int
	maxFanout  int
	split      split.Policy
	election   Election
	seed       uint64
	seedSet    bool
	checkEvery int
	pubWorkers int
}

// Option configures Open.
type Option func(*openConfig) error

// WithEngine selects the backend (default EngineCore).
func WithEngine(kind EngineKind) Option {
	return func(c *openConfig) error {
		if _, err := ParseEngineKind(string(kind)); err != nil {
			return err
		}
		c.kind = kind
		return nil
	}
}

// WithFanout sets the paper's m and M bounds (default 2, 4; M >= 2m).
func WithFanout(m, M int) Option {
	return func(c *openConfig) error {
		c.minFanout, c.maxFanout = m, M
		return nil
	}
}

// WithSplit selects the node-splitting policy by name
// (linear, quadratic or rstar; default quadratic).
func WithSplit(name string) Option {
	return func(c *openConfig) error {
		pol, err := split.ByName(name)
		if err != nil {
			return err
		}
		c.split = pol
		return nil
	}
}

// WithElection sets the parent/root election policy (EngineCore only;
// default LargestMBR, the paper's Figure 6 rule).
func WithElection(e Election) Option {
	return func(c *openConfig) error {
		c.election = e
		return nil
	}
}

// WithSeed seeds the simulated network's randomness (message drops,
// delay jitter) for EngineProto. Other engines ignore it.
func WithSeed(seed uint64) Option {
	return func(c *openConfig) error {
		c.seed, c.seedSet = seed, true
		return nil
	}
}

// WithCheckEvery sets the period, in rounds, of the periodic CHECK_*
// timers for the message-passing engines.
func WithCheckEvery(rounds int) Option {
	return func(c *openConfig) error {
		if rounds < 1 {
			return fmt.Errorf("drtree: CheckEvery must be >= 1, got %d", rounds)
		}
		c.checkEvery = rounds
		return nil
	}
}

// WithPublishWorkers sets the worker-pool size for EngineCore's batched
// dissemination (PublishBatch): 0 picks min(GOMAXPROCS, 8) automatically,
// 1 forces the sequential path, larger values are clamped to 8. Batches
// disseminate in parallel over the arena's read-only routing state and
// merge deterministically, so deliveries are byte-identical at every
// setting. Other engines ignore it.
func WithPublishWorkers(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("drtree: PublishWorkers must be >= 0, got %d", n)
		}
		c.pubWorkers = n
		return nil
	}
}

// Open builds a DR-tree overlay engine from functional options:
//
//	eng, err := drtree.Open(drtree.WithEngine(drtree.EngineProto),
//		drtree.WithFanout(2, 4), drtree.WithSeed(42))
//
// With no options it opens the sequential engine with fanout (2, 4).
// Close the returned engine when done; only EngineLive holds background
// resources, but the call is uniform.
func Open(opts ...Option) (Engine, error) {
	cfg := openConfig{kind: EngineCore, minFanout: 2, maxFanout: 4}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	switch cfg.kind {
	case EngineCore:
		return core.New(core.Params{
			MinFanout:      cfg.minFanout,
			MaxFanout:      cfg.maxFanout,
			Split:          cfg.split,
			Election:       cfg.election,
			PublishWorkers: cfg.pubWorkers,
		})
	case EngineProto:
		cl, err := proto.NewCluster(proto.Config{
			MinFanout:  cfg.minFanout,
			MaxFanout:  cfg.maxFanout,
			Split:      cfg.split,
			CheckEvery: cfg.checkEvery,
		})
		if err != nil {
			return nil, err
		}
		if cfg.seedSet {
			cl.Net().Rand = rand.New(rand.NewPCG(cfg.seed, 0x5EED))
		}
		return cl, nil
	case EngineLive:
		return proto.NewLiveCluster(proto.Config{
			MinFanout:  cfg.minFanout,
			MaxFanout:  cfg.maxFanout,
			Split:      cfg.split,
			CheckEvery: cfg.checkEvery,
		})
	}
	return nil, fmt.Errorf("drtree: unknown engine %q", cfg.kind)
}

// NewTree creates an empty sequential DR-tree overlay with the full
// Tree surface (Open(WithEngine(EngineCore)) narrowed to Engine is the
// interface-first equivalent).
func NewTree(p Params) (*Tree, error) { return core.New(p) }

// FalseNegatives lists live subscribers whose filter matches ev but that
// are absent from d.Received — the ground-truth delivery check shared by
// the tools and examples. On a stabilized overlay it must return nil.
func FalseNegatives(eng Engine, d Delivery, ev Point) []ProcID {
	return engine.FalseNegatives(eng, d, ev)
}

// Publish/subscribe re-exports.
type (
	// Broker is the content-based publish/subscribe front end. It runs
	// over any Engine; subscribers attach to a bounded pool of gateway
	// processes rather than joining the overlay individually, so the
	// overlay size is decoupled from the subscriber count.
	Broker = pubsub.Broker
	// BrokerOption configures NewBroker (see WithGateways).
	BrokerOption = pubsub.Option
	// GatewayStat describes one broker gateway (Broker.GatewayStats).
	GatewayStat = pubsub.GatewayStat
	// Filter is a conjunction of attribute predicates.
	Filter = filter.Filter
	// Event is an attribute/value message.
	Event = filter.Event
	// Space is an ordered attribute schema.
	Space = filter.Space
	// Notification reports one publication.
	Notification = pubsub.Notification
)

// Delivery-layer re-exports: queue-backed subscribers whose consumer
// code can be arbitrarily slow — or dead — without ever blocking
// Publish/PublishBatch or other subscribers.
type (
	// Envelope is one event delivered to a queue-backed subscriber
	// (Broker.SubscribeFunc / Broker.SubscribeChan).
	Envelope = pubsub.Envelope
	// Handler consumes envelopes on the subscriber's own goroutine.
	Handler = pubsub.Handler
	// DeliveryOption configures a queue-backed subscription (see
	// WithQueueDepth, WithOverflowPolicy, WithAtLeastOnce).
	DeliveryOption = pubsub.DeliveryOption
	// OverflowPolicy selects what a full delivery queue does with new
	// events (DropOldest, CoalesceByFilter or Block).
	OverflowPolicy = pubsub.OverflowPolicy
	// DeliveryStats snapshots one subscriber's delivery-queue counters
	// (Broker.DeliveryStats / Broker.DeliveryStatsOf).
	DeliveryStats = pubsub.DeliveryStats
)

// Overflow policies for WithOverflowPolicy.
const (
	// DropOldest sheds the oldest queued event to make room (default).
	DropOldest = pubsub.DropOldest
	// CoalesceByFilter keeps only the newest events for the subscriber's
	// filter under pressure.
	CoalesceByFilter = pubsub.CoalesceByFilter
	// Block applies lossless backpressure: the publisher waits for queue
	// space. The only policy under which a consumer can slow a producer.
	Block = pubsub.Block
)

// DefaultQueueDepth is the delivery-queue capacity used when
// WithQueueDepth is not given.
const DefaultQueueDepth = pubsub.DefaultQueueDepth

// ErrProducerNotRegistered reports a publish whose producer is not a
// current subscriber — including the race where the producer is
// unsubscribed concurrently with the publish.
var ErrProducerNotRegistered = pubsub.ErrProducerNotRegistered

// WithQueueDepth sets a subscriber's delivery-queue capacity (default
// DefaultQueueDepth).
func WithQueueDepth(n int) DeliveryOption { return pubsub.WithQueueDepth(n) }

// WithOverflowPolicy sets a subscriber's queue overflow policy (default
// DropOldest).
func WithOverflowPolicy(p OverflowPolicy) DeliveryOption { return pubsub.WithOverflowPolicy(p) }

// WithAtLeastOnce turns on ack-based delivery for a SubscribeFunc
// subscriber: an envelope is retried until the handler returns nil, up
// to maxRedeliver redeliveries.
func WithAtLeastOnce(maxRedeliver int) DeliveryOption { return pubsub.WithAtLeastOnce(maxRedeliver) }

// NewSpace builds an attribute space over the given names.
func NewSpace(attrs ...string) (*Space, error) { return filter.NewSpace(attrs...) }

// WithGateways sets the Broker's gateway pool size: the number of
// overlay processes its subscribers share (default 16). More gateways
// mean tighter aggregate filters and smaller per-gateway match indexes;
// fewer mean a smaller overlay.
func WithGateways(n int) BrokerOption { return pubsub.WithGateways(n) }

// WithGatewayPolicy replaces the Broker's fixed gateway pool with an
// adaptive one: the pool starts at min gateways, a gateway reaching
// target subscriptions splits onto a new overlay member (up to max),
// and an underfull gateway drains into its peers and retires.
// Subscriptions are placed spatially (least union enlargement), so the
// broker's top-level routing tree prunes classification work — see
// Notification.GatewayVisited. Mutually exclusive with WithGateways.
func WithGatewayPolicy(target, min, max int) BrokerOption {
	return pubsub.WithGatewayPolicy(target, min, max)
}

// WithGatewayBase sets the overlay process ID of the Broker's first
// gateway (default 1); gateway i gets base+i. Brokers sharing one
// overlay from different daemons — each daemon owning a disjoint slice
// of the process-ID space — give each broker a disjoint base.
func WithGatewayBase(base ProcID) BrokerOption { return pubsub.WithGatewayBase(base) }

// Durable-state re-exports: the broker's control plane can outlive the
// process through a narrow Store seam (see internal/state).
type (
	// Store is the durability seam: an append-only journal with a
	// snapshot baseline behind Append/Snapshot/Replay/Compact.
	Store = state.Store
	// StoreStats describes a store's shape (records, snapshot presence,
	// torn bytes repaired on open).
	StoreStats = state.Stats
	// RecoverStats summarizes one Broker.Recover pass.
	RecoverStats = pubsub.RecoverStats
)

// OpenWAL opens (or creates) the file-backed store in dir: an
// append-only write-ahead log with CRC-protected records, group-commit
// fsync batching and torn-tail repair, plus an atomically installed
// snapshot file.
func OpenWAL(dir string) (*state.WAL, error) { return state.OpenWAL(dir) }

// NewMemStore returns the pure in-memory Store — the durability
// contract without the filesystem, for tests and ephemeral brokers.
func NewMemStore() *state.Mem { return state.NewMem() }

// WithStore makes a Broker durable: every Subscribe, Unsubscribe and
// UpdateFilter journals to s before returning, and a broker constructed
// later over the same store rebuilds the subscription set with
// Broker.Recover (subscribers then re-attach by ID with
// Broker.AttachFunc / Broker.AttachChan).
func WithStore(s Store) BrokerOption { return pubsub.WithStore(s) }

// WithSnapshotEvery sets a durable Broker's checkpoint cadence: a
// background snapshot+compact after every n journaled operations (0
// disables automatic checkpoints; Broker.Checkpoint stays available).
func WithSnapshotEvery(n int) BrokerOption { return pubsub.WithSnapshotEvery(n) }

// NewBroker creates a publish/subscribe broker over space on the given
// overlay engine:
//
//	eng, _ := drtree.Open(drtree.WithEngine(drtree.EngineProto))
//	broker, _ := drtree.NewBroker(space, eng, drtree.WithGateways(8))
func NewBroker(space *Space, eng Engine, opts ...BrokerOption) (*Broker, error) {
	return pubsub.New(space, eng, opts...)
}

// ParseFilter parses the textual predicate language, e.g.
// "price in [10, 20] && qty >= 3".
func ParseFilter(src string) (Filter, error) { return filter.Parse(src) }

// Range is a convenience filter constructor: the closed interval
// lo <= attr <= hi. Conjoin ranges with Filter.And.
func Range(attr string, lo, hi float64) Filter { return filter.Range(attr, lo, hi) }
