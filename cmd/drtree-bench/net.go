package main

import (
	"fmt"
	"net"
	"slices"
	"time"

	"drtree/internal/drtreed"
	"drtree/internal/filter"
)

// measureNetPublish pins the first real-socket numbers: two drtreed
// daemons share one overlay on loopback TCP, a subscriber attaches to
// daemon 1 and a publisher to daemon 0, and each sample measures one
// cross-daemon publish→notify round trip (binary RPC in, overlay hop
// over the wire, delivery-queue drain, Notify frame out). The recorded
// p50/p99 are wall-clock and never gated; every gated counter of the
// row is a constant zero.
func measureNetPublish() (brokerRecord, error) {
	const samples = 200

	lns := make([]net.Listener, 2)
	peers := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return brokerRecord{}, err
		}
		defer ln.Close()
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ds := make([]*drtreed.Daemon, 2)
	for i := range ds {
		d, err := drtreed.New(
			drtreed.WithNode(i),
			drtreed.WithPeers(peers...),
			drtreed.WithListener(lns[i]),
			drtreed.WithSpace("x", "y"),
			drtreed.WithGateways(1),
		)
		if err != nil {
			return brokerRecord{}, err
		}
		defer d.Close()
		ds[i] = d
	}

	sub, err := drtreed.Dial(ds[1].Addr(), 5*time.Second)
	if err != nil {
		return brokerRecord{}, err
	}
	defer sub.Close()
	if err := sub.Subscribe(1, "x in [0, 1000] && y in [0, 1000]"); err != nil {
		return brokerRecord{}, err
	}
	pub, err := drtreed.Dial(ds[0].Addr(), 5*time.Second)
	if err != nil {
		return brokerRecord{}, err
	}
	defer pub.Close()
	if err := pub.Subscribe(2, "x in [2000, 3000] && y in [2000, 3000]"); err != nil {
		return brokerRecord{}, err
	}

	// Warm up until the cross-daemon path delivers: the overlay converges
	// through the periodic checks, so the first publish may predate a
	// usable route. Each retry is a distinct x so stale deliveries are
	// recognizable.
	await := func(x float64, timeout time.Duration) bool {
		deadline := time.Now().Add(timeout)
		for {
			remain := time.Until(deadline)
			if remain <= 0 {
				return false
			}
			select {
			case e := <-sub.Events():
				if e.Event["x"] == x {
					return true
				}
			case <-time.After(remain):
				return false
			}
		}
	}
	warm := false
	for i := 0; i < 100 && !warm; i++ {
		x := float64(i) * 0.25 // distinct, inside the subscriber's [0, 1000] band
		if err := pub.Publish(2, filter.Event{"x": x, "y": 1}); err != nil {
			return brokerRecord{}, err
		}
		warm = await(x, 300*time.Millisecond)
	}
	if !warm {
		return brokerRecord{}, fmt.Errorf("netpublish: cross-daemon path never converged")
	}

	lats := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		x := 100 + float64(i)*0.25 // disjoint from the warm-up band, still matching
		start := time.Now()
		if err := pub.Publish(2, filter.Event{"x": x, "y": 1}); err != nil {
			return brokerRecord{}, err
		}
		if !await(x, 10*time.Second) {
			return brokerRecord{}, fmt.Errorf("netpublish: sample %d never delivered", i)
		}
		lats = append(lats, time.Since(start))
	}
	slices.Sort(lats)

	return brokerRecord{
		Name:           "NetPublish/loopback2d",
		Engine:         "live+tcp",
		Population:     2,
		Gateways:       1,
		Batch:          samples,
		NsPerEvent:     -1,
		AllocsPerEvent: -1,
		NetP50Ns:       lats[samples/2].Nanoseconds(),
		NetP99Ns:       lats[samples*99/100].Nanoseconds(),
	}, nil
}
