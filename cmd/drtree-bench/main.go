// Command drtree-bench regenerates the paper's quantitative artifacts
// (experiments E1-E10, see DESIGN.md §3 and EXPERIMENTS.md) and prints
// one paper-style table per experiment. With -bench-core it instead runs
// the core hot-path micro-benchmarks and records the ns/op and alloc
// baselines to a JSON file (the repository keeps BENCH_core.json); with
// -bench-proto it measures the wire protocol's dissemination costs —
// publish latency in rounds and per-round/per-publish message counts —
// and records them likewise (the repository keeps BENCH_proto.json).
//
// Usage:
//
//	drtree-bench [-seed N] [-exp E1,E5,E7]
//	drtree-bench -bench-core BENCH_core.json
//	drtree-bench -bench-proto BENCH_proto.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"testing"

	"drtree/internal/core"
	"drtree/internal/experiments"
	"drtree/internal/geom"
	"drtree/internal/proto"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "random seed for all experiments")
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	benchCore := flag.String("bench-core", "", "run the core hot-path benchmarks and write the baselines to this JSON file")
	benchProto := flag.String("bench-proto", "", "run the wire-protocol dissemination benchmarks and write the baselines to this JSON file")
	flag.Parse()

	if *benchCore != "" {
		return runBenchCore(*benchCore)
	}
	if *benchProto != "" {
		return runBenchProto(*benchProto)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		if e = strings.TrimSpace(strings.ToUpper(e)); e != "" {
			want[e] = true
		}
	}

	runners := []struct {
		id  string
		run func() experiments.Result
	}{
		{"E1", experiments.RunE1},
		{"E2", func() experiments.Result { return experiments.RunE2(*seed, []int{100, 400, 1600}) }},
		{"E3", func() experiments.Result { return experiments.RunE3(*seed, []int{100, 400, 1600}) }},
		{"E4", func() experiments.Result { return experiments.RunE4(*seed, []int{100, 400}) }},
		{"E5", func() experiments.Result { return experiments.RunE5(*seed, 60, 20) }},
		{"E6", func() experiments.Result { return experiments.RunE6(*seed, 150, 300) }},
		{"E7", func() experiments.Result { return experiments.RunE7(*seed, 30, []float64{5, 15, 30, 60}) }},
		{"E8", func() experiments.Result { return experiments.RunE8(*seed, 200, 300) }},
		{"E9", func() experiments.Result { return experiments.RunE9(*seed, 120, 300) }},
		{"E10", func() experiments.Result { return experiments.RunE10(*seed, 100, 400) }},
	}

	failures := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		res := r.run()
		fmt.Println(res)
		if res.Err != nil {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	return 0
}

// benchRecord is one recorded benchmark baseline.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// runBenchCore measures the two core hot paths guarded by this repo's
// performance budget — a 1000-subscriber build-up (per-join cost) and
// steady-state publishing on the resulting tree — and writes the result
// as JSON. The workloads replicate BenchmarkJoin1000 and
// BenchmarkPublishN1000 in internal/core seed-for-seed (PCG(2,2) for the
// join build-up; benchTree's PCG(1,1000) build and continuing event
// stream for publish) so numbers are comparable with `go test -bench`.
func runBenchCore(path string) int {
	build := func(b *testing.B, s1, s2 uint64) (*core.Tree, *rand.Rand) {
		rng := rand.New(rand.NewPCG(s1, s2))
		tr := core.MustNew(core.Params{MinFanout: 2, MaxFanout: 4})
		for k := 1; k <= 1000; k++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Join(core.ProcID(k), geom.R2(x, y, x+15, y+15)); err != nil {
				b.Fatal(err)
			}
		}
		return tr, rng
	}

	joinRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			build(b, 2, 2)
		}
	})

	publishRes := testing.Benchmark(func(b *testing.B) {
		tr, rng := build(b, 1, 1000)
		ids := tr.ProcIDs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			if _, err := tr.Publish(ids[i%len(ids)], ev); err != nil {
				b.Fatal(err)
			}
		}
	})

	records := []benchRecord{
		{
			Name:        "BenchmarkJoin1000",
			NsPerOp:     float64(joinRes.NsPerOp()),
			BytesPerOp:  joinRes.AllocedBytesPerOp(),
			AllocsPerOp: joinRes.AllocsPerOp(),
		},
		{
			Name:        "BenchmarkPublishN1000",
			NsPerOp:     float64(publishRes.NsPerOp()),
			BytesPerOp:  publishRes.AllocedBytesPerOp(),
			AllocsPerOp: publishRes.AllocsPerOp(),
		},
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, r := range records {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// protoRecord is one recorded wire-protocol dissemination baseline.
type protoRecord struct {
	Name             string  `json:"name"`
	Population       int     `json:"population"`
	Events           int     `json:"events"`
	RoundsPerPublish float64 `json:"rounds_per_publish"`
	MsgsPerPublish   float64 `json:"msgs_per_publish"`
	MsgsPerRound     float64 `json:"msgs_per_round"`
}

// runBenchProto measures the message-passing engine's dissemination
// costs at two populations: the overlay is built and stabilized once,
// then a fixed seeded event stream is published and the per-publish
// latency (in network rounds) and message counts are averaged. The
// numbers are deterministic — the round scheduler and the PCG seeds pin
// every delivery — so the artifact doubles as a regression baseline for
// protocol chattiness.
func runBenchProto(path string) int {
	var records []protoRecord
	for _, n := range []int{100, 400} {
		const events = 200
		cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rng := rand.New(rand.NewPCG(uint64(n), 0xBE7C))
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+15, y+15)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			cl.Step(false)
		}
		if st := cl.Stabilize(); !st.Converged {
			fmt.Fprintf(os.Stderr, "population %d did not stabilize: %v\n", n, cl.CheckLegal())
			return 1
		}
		ids := cl.IDs()
		var rounds, msgs int
		for k := 0; k < events; k++ {
			ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			d, err := cl.Publish(ids[k%len(ids)], ev)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			rounds += d.Rounds
			msgs += d.Messages
		}
		records = append(records, protoRecord{
			Name:             fmt.Sprintf("ProtoPublish%d", n),
			Population:       n,
			Events:           events,
			RoundsPerPublish: float64(rounds) / float64(events),
			MsgsPerPublish:   float64(msgs) / float64(events),
			MsgsPerRound:     float64(msgs) / float64(max(rounds, 1)),
		})
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, r := range records {
		fmt.Printf("%-20s %8.2f rounds/publish %8.2f msgs/publish %8.2f msgs/round\n",
			r.Name, r.RoundsPerPublish, r.MsgsPerPublish, r.MsgsPerRound)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}
