// Command drtree-bench regenerates the paper's quantitative artifacts
// (experiments E1-E10, see DESIGN.md §3 and EXPERIMENTS.md) and prints
// one paper-style table per experiment. With -bench-core it instead runs
// the core hot-path micro-benchmarks and records the ns/op and alloc
// baselines to a JSON file (the repository keeps BENCH_core.json); with
// -bench-proto it measures the wire protocol's dissemination costs —
// publish latency in rounds and per-round/per-publish message counts —
// and records them likewise (BENCH_proto.json); with -bench-broker it
// measures the batched publish pipeline through the gateway Broker at
// batch sizes 1/16/256 over both the sequential and the wire engine,
// plus the subscriber-scale sweep (1k → 1M subscribers on the adaptive
// gateway pool, pinning the pool size and the sublinear match-scan
// cost), the drift and Zipf-hotspot scenario rows at 100k subscribers,
// and the frozen-consumer delivery scenario (pinning the delivery-layer
// delivered/dropped totals that certify the never-block guarantee)
// (BENCH_broker.json).
//
// -gate re-runs all three benchmark suites and diffs the deterministic
// counters (allocs, message and round counts — never wall-clock fields)
// against the committed BENCH_*.json baselines, failing on any
// difference: the CI perf-gate job locks the recorded wins in.
//
// -loadgen drives the sharded Broker with concurrent publishers and
// reports wall-clock throughput (the EXPERIMENTS.md loadgen table).
//
// Usage:
//
//	drtree-bench [-seed N] [-exp E1,E5,E7]
//	drtree-bench -bench-core BENCH_core.json
//	drtree-bench -bench-proto BENCH_proto.json
//	drtree-bench -bench-broker BENCH_broker.json
//	drtree-bench -gate
//	drtree-bench -loadgen [-loadgen-publishers 1,2,4,8] [-loadgen-subs N] [-loadgen-events N] [-loadgen-batch K]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"drtree/internal/core"
	"drtree/internal/engine"
	"drtree/internal/experiments"
	"drtree/internal/filter"
	"drtree/internal/geom"
	"drtree/internal/proto"
	"drtree/internal/pubsub"
	"drtree/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "random seed for all experiments")
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	benchCore := flag.String("bench-core", "", "run the core hot-path benchmarks and write the baselines to this JSON file")
	benchProto := flag.String("bench-proto", "", "run the wire-protocol dissemination benchmarks and write the baselines to this JSON file")
	benchBroker := flag.String("bench-broker", "", "run the batched broker-pipeline benchmarks and write the baselines to this JSON file")
	gate := flag.Bool("gate", false, "re-run all benchmark suites and fail if any deterministic counter differs from the committed BENCH_*.json")
	loadgen := flag.Bool("loadgen", false, "drive the sharded broker with concurrent publishers and report wall-clock throughput")
	lgPublishers := flag.String("loadgen-publishers", "1,2,4,8", "comma-separated publisher counts for -loadgen")
	lgSubs := flag.Int("loadgen-subs", 1000, "subscriber population for -loadgen")
	lgGateways := flag.Int("loadgen-gateways", 16, "gateway pool size for -loadgen (overlay processes shared by all subscribers)")
	lgEvents := flag.Int("loadgen-events", 20000, "events published per -loadgen row")
	lgBatch := flag.Int("loadgen-batch", 64, "events per PublishBatch call in -loadgen")
	flag.Parse()

	switch {
	case *benchCore != "":
		return runBenchCore(*benchCore)
	case *benchProto != "":
		return runBenchProto(*benchProto)
	case *benchBroker != "":
		return runBenchBroker(*benchBroker)
	case *gate:
		return runGate()
	case *loadgen:
		pubs, err := parseIntList(*lgPublishers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return runLoadgen(pubs, *lgSubs, *lgGateways, *lgEvents, *lgBatch)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		if e = strings.TrimSpace(strings.ToUpper(e)); e != "" {
			want[e] = true
		}
	}

	runners := []struct {
		id  string
		run func() experiments.Result
	}{
		{"E1", experiments.RunE1},
		{"E2", func() experiments.Result { return experiments.RunE2(*seed, []int{100, 400, 1600}) }},
		{"E3", func() experiments.Result { return experiments.RunE3(*seed, []int{100, 400, 1600}) }},
		{"E4", func() experiments.Result { return experiments.RunE4(*seed, []int{100, 400}) }},
		{"E5", func() experiments.Result { return experiments.RunE5(*seed, 60, 20) }},
		{"E6", func() experiments.Result { return experiments.RunE6(*seed, 150, 300) }},
		{"E7", func() experiments.Result { return experiments.RunE7(*seed, 30, []float64{5, 15, 30, 60}) }},
		{"E8", func() experiments.Result { return experiments.RunE8(*seed, 200, 300) }},
		{"E9", func() experiments.Result { return experiments.RunE9(*seed, 120, 300) }},
		{"E10", func() experiments.Result { return experiments.RunE10(*seed, 100, 400) }},
	}

	failures := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		res := r.run()
		fmt.Println(res)
		if res.Err != nil {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	return 0
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("drtree-bench: bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("drtree-bench: empty count list %q", s)
	}
	return out, nil
}

// writeJSON writes v to path as indented JSON with a trailing newline.
func writeJSON(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// readJSONStrict decodes path into v, rejecting unknown fields so the
// committed baselines and the recorder cannot drift apart silently.
func readJSONStrict(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// benchRecord is one recorded benchmark baseline. The arena_* fields are
// the sequential engine's instance-arena residency after the workload
// (slots allocated / live / on the free list): they are exact,
// deterministic counters, so the perf gate catches both handle leaks
// (live drifting above the process count) and recycling regressions
// (free slots piling up where reuse is expected).
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ArenaCap    int     `json:"arena_cap"`
	ArenaLive   int     `json:"arena_live"`
	ArenaFree   int     `json:"arena_free"`
}

// measureBenchCore measures the core hot paths guarded by this repo's
// performance budget — a 1000-subscriber build-up (per-join cost),
// steady-state publishing on the resulting tree, and a seeded
// join/leave/crash churn cycle that exercises the arena free list. The
// first two workloads replicate BenchmarkJoin1000 and
// BenchmarkPublishN1000 in internal/core seed-for-seed (PCG(2,2) for the
// join build-up; benchTree's PCG(1,1000) build and continuing event
// stream for publish) so numbers are comparable with `go test -bench`.
// PublishWorkers is pinned to 1 everywhere: the recorded counters must
// not depend on the machine's core count.
func measureBenchCore() []benchRecord {
	// The recorded allocs/op must be exact across machines and binaries:
	// with the collector running, GC pacing (which shifts with binary
	// size and heap history) decides when pooled buffers are dropped and
	// re-allocated, wobbling the churn workload's count by a few parts
	// per million. Switching GC off for the measurement removes the only
	// nondeterministic allocation source; the workloads' live heap is
	// bounded (tens of MB per iteration), so the process stays small.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	build := func(b *testing.B, s1, s2 uint64) (*core.Tree, *rand.Rand) {
		rng := rand.New(rand.NewPCG(s1, s2))
		tr := core.MustNew(core.Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 1})
		for k := 1; k <= 1000; k++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tr.Join(core.ProcID(k), geom.R2(x, y, x+15, y+15)); err != nil {
				b.Fatal(err)
			}
		}
		return tr, rng
	}

	var joinArena, publishArena, churnArena core.ArenaStats
	joinRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, _ := build(b, 2, 2)
			joinArena = tr.ArenaStats()
		}
	})

	publishRes := testing.Benchmark(func(b *testing.B) {
		tr, rng := build(b, 1, 1000)
		ids := tr.ProcIDs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			if _, err := tr.Publish(ids[i%len(ids)], ev); err != nil {
				b.Fatal(err)
			}
		}
		publishArena = tr.ArenaStats()
	})

	// Churn: half the population leaves or crashes and a new cohort joins,
	// so departures push handles onto the free list and the joins reclaim
	// them. The final residency is a deterministic fingerprint of the
	// release/reuse discipline.
	churnRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, rng := build(b, 7, 7)
			for k := 1; k <= 500; k++ {
				id := core.ProcID(1 + rng.IntN(1000))
				if _, ok := tr.Filter(id); !ok {
					continue
				}
				var err error
				if k%2 == 0 {
					err = tr.Leave(id)
				} else {
					err = tr.Crash(id)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			tr.Stabilize()
			for k := 1001; k <= 1250; k++ {
				x, y := rng.Float64()*1000, rng.Float64()*1000
				if err := tr.Join(core.ProcID(k), geom.R2(x, y, x+15, y+15)); err != nil {
					b.Fatal(err)
				}
			}
			churnArena = tr.ArenaStats()
		}
	})

	rec := func(name string, r testing.BenchmarkResult, ar core.ArenaStats) benchRecord {
		return benchRecord{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			ArenaCap:    ar.Cap,
			ArenaLive:   ar.Live,
			ArenaFree:   ar.Free,
		}
	}
	return []benchRecord{
		rec("BenchmarkJoin1000", joinRes, joinArena),
		rec("BenchmarkPublishN1000", publishRes, publishArena),
		rec("BenchmarkChurnArena", churnRes, churnArena),
	}
}

// runBenchCore records the core baselines to path.
func runBenchCore(path string) int {
	records := measureBenchCore()
	if err := writeJSON(path, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, r := range records {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// protoRecord is one recorded wire-protocol dissemination baseline.
type protoRecord struct {
	Name             string  `json:"name"`
	Population       int     `json:"population"`
	Events           int     `json:"events"`
	RoundsPerPublish float64 `json:"rounds_per_publish"`
	MsgsPerPublish   float64 `json:"msgs_per_publish"`
	MsgsPerRound     float64 `json:"msgs_per_round"`
}

// measureBenchProto measures the message-passing engine's dissemination
// costs at two populations: the overlay is built and stabilized once,
// then a fixed seeded event stream is published and the per-publish
// latency (in network rounds) and message counts are averaged. The
// numbers are deterministic — the round scheduler and the PCG seeds pin
// every delivery — so the artifact doubles as a regression baseline for
// protocol chattiness.
func measureBenchProto() ([]protoRecord, error) {
	var records []protoRecord
	for _, n := range []int{100, 400} {
		const events = 200
		cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewPCG(uint64(n), 0xBE7C))
		for i := 1; i <= n; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := cl.Join(core.ProcID(i), geom.R2(x, y, x+15, y+15)); err != nil {
				return nil, err
			}
			cl.Step(false)
		}
		if st := cl.Stabilize(); !st.Converged {
			return nil, fmt.Errorf("population %d did not stabilize: %v", n, cl.CheckLegal())
		}
		ids := cl.IDs()
		var rounds, msgs int
		for k := 0; k < events; k++ {
			ev := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			d, err := cl.Publish(ids[k%len(ids)], ev)
			if err != nil {
				return nil, err
			}
			rounds += d.Rounds
			msgs += d.Messages
		}
		records = append(records, protoRecord{
			Name:             fmt.Sprintf("ProtoPublish%d", n),
			Population:       n,
			Events:           events,
			RoundsPerPublish: float64(rounds) / float64(events),
			MsgsPerPublish:   float64(msgs) / float64(events),
			MsgsPerRound:     float64(msgs) / float64(max(rounds, 1)),
		})
	}
	return records, nil
}

// runBenchProto records the wire-protocol baselines to path.
func runBenchProto(path string) int {
	records, err := measureBenchProto()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeJSON(path, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, r := range records {
		fmt.Printf("%-20s %8.2f rounds/publish %8.2f msgs/publish %8.2f msgs/round\n",
			r.Name, r.RoundsPerPublish, r.MsgsPerPublish, r.MsgsPerRound)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// brokerRecord is one recorded broker batch-pipeline baseline. The
// wall-clock NsPerEvent is informational only; AllocsPerEvent (sequential
// engine; -1 when not measured), MsgsPerEvent, RoundsPerBatch,
// ScanVisitedPerEvent (total R-tree nodes visited to classify one event:
// the top-level routing tree over gateway unions plus every match index
// probed — the cost that replaced the global subscriber scan),
// GatewayVisitedPerEvent (match indexes the routing tree could not
// prune) and FullReunions are deterministic and enforced by the perf
// gate. Gateways is gated too: on adaptive rows it pins the pool size
// the policy grew to.
type brokerRecord struct {
	Name                   string  `json:"name"`
	Engine                 string  `json:"engine"`
	Population             int     `json:"population"`
	Gateways               int     `json:"gateways"`
	Batch                  int     `json:"batch"`
	NsPerEvent             float64 `json:"ns_per_event"`
	AllocsPerEvent         float64 `json:"allocs_per_event"`
	MsgsPerEvent           float64 `json:"msgs_per_event"`
	RoundsPerBatch         float64 `json:"rounds_per_batch"`
	ScanVisitedPerEvent    float64 `json:"scan_visited_per_event"`
	GatewayVisitedPerEvent float64 `json:"gateway_visited_per_event"`
	// FullReunions counts the O(entries) union recomputations the
	// incremental re-union could not avoid over the row's whole workload
	// (nonzero only where churn shrinks unions — the drift row). A rise
	// means boundary-attainment bookkeeping regressed.
	FullReunions int64 `json:"full_reunions"`
	// Arena residency of the sequential engine's instance arena after
	// the workload (zero for the wire engine): deterministic, gated.
	ArenaCap  int `json:"arena_cap"`
	ArenaLive int `json:"arena_live"`
	ArenaFree int `json:"arena_free"`
	// Delivery-layer counters of the frozen-consumer scenario (zero for
	// the publish-pipeline rows): events handed to subscriber handlers
	// and events shed by bounded queues. Deterministic, gated — a
	// regression in the never-block guarantee shifts both.
	DeliveredEvents int64 `json:"delivered_events"`
	DroppedEvents   int64 `json:"dropped_events"`
	// Cross-daemon publish→notify latency over loopback TCP (the
	// NetPublish row; zero elsewhere). Wall-clock, informational only —
	// never compared by -gate.
	NetP50Ns int64 `json:"net_p50_ns"`
	NetP99Ns int64 `json:"net_p99_ns"`
}

// batchSizes are the broker pipeline's measured batch sizes. Powers of
// two keep the allocs/event division exact in float64, so the baseline
// survives a JSON round trip bit-for-bit.
var batchSizes = []int{1, 16, 256}

// scaleSizes are the subscriber populations of the gateway-scale sweep:
// the per-event classification cost at the top size must stay within ~2x
// of the bottom size — the sublinear-scan contract of the adaptive
// gateway tier (asserted by the smoke test and pinned exactly by the
// perf gate). The sweep tops out at one million subscribers: the
// adaptive policy grows the pool with the population while the two-level
// routing tree keeps per-event classification nearly flat, so the row
// certifies the tier at three orders of magnitude above the seed's
// original scale.
var scaleSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// scaleGateways is the fixed pool size of the batch-size rows (the
// adaptive scale sweep sizes its own pool via scalePolicy).
const scaleGateways = 16

// scalePolicy is the adaptive pool of the scale sweep: split gateways
// past ~2048 subscribers, never below 4 or above 4096 processes. The
// per-gateway match indexes then stay bounded as the population grows;
// what is left to certify is that the top-level routing tree keeps the
// number of indexes *visited* per event from growing with the pool.
func scalePolicy() pubsub.Option { return pubsub.WithGatewayPolicy(2048, 4, 4096) }

// brokerWorkload builds a broker over eng with n seeded rectangle
// subscribers on the given gateway pool (a WithGateways or
// WithGatewayPolicy option) and returns it with a fixed 256-event
// stream. The subscription side length shrinks as 1/sqrt(n) so the
// expected matching population per event is constant across n — the
// sweep then isolates the *scan* cost from the (necessarily linear)
// output size. Seeds are pinned so every measurement (and every CI run)
// sees the same overlay and the same events.
func brokerWorkload(eng engine.Engine, n int, pool pubsub.Option) (*pubsub.Broker, []filter.Event, error) {
	b, err := pubsub.New(filter.MustSpace("x", "y"), eng, pool)
	if err != nil {
		return nil, nil, err
	}
	side := 15 * math.Sqrt(1000/float64(n))
	rng := rand.New(rand.NewPCG(uint64(n), 0xB20CE2))
	for i := 1; i <= n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		f := filter.Range("x", x, x+side).And(filter.Range("y", y, y+side))
		if err := b.Subscribe(core.ProcID(i), f); err != nil {
			return nil, nil, err
		}
	}
	evs := make([]filter.Event, 256)
	for k := range evs {
		evs[k] = filter.Event{"x": rng.Float64() * 1000, "y": rng.Float64() * 1000}
	}
	return b, evs, nil
}

// sumCounters totals the deterministic per-event counters of a batch.
func sumCounters(notes []pubsub.Notification) (msgs, visited, gwVisited int) {
	for _, n := range notes {
		msgs += n.Messages
		visited += n.ScanVisited
		gwVisited += n.GatewayVisited
	}
	return msgs, visited, gwVisited
}

// fullReunions totals the shrink-path union recomputations across the
// broker's gateway pool.
func fullReunions(b *pubsub.Broker) int64 {
	var n int64
	for _, st := range b.GatewayStats() {
		n += int64(st.FullReunions)
	}
	return n
}

// measureBenchBroker measures the batched publish pipeline end to end
// through the gateway Broker: over the sequential engine (1000
// subscribers on 16 gateways; wall-clock and allocation cost per event
// as the batch grows), over the deterministic wire engine (100
// subscribers on 16 gateways; message and round cost per event — the
// shared round budget is what makes a proto batch cheaper than
// sequential publishes), the subscriber-scale sweep (1k → 1M
// subscribers on the adaptive pool, pinning the pool size, the
// match-scan cost, the routed gateway visits and allocs/event that
// certify the sublinear classification), the drift and Zipf scenario
// rows at 100k subscribers (the moving-interest and hotspot regimes,
// with the drift row pinning the incremental re-union's FullReunions
// count), plus the frozen-consumer delivery scenario whose exact
// delivered/dropped totals pin the delivery layer's backpressure
// contract.
func measureBenchBroker() ([]brokerRecord, error) {
	var records []brokerRecord

	// Sequential engine: testing.Benchmark gives per-op wall/alloc costs;
	// one op = one PublishBatch of the first `size` fixed events.
	// PublishWorkers is pinned to 1 so allocs/event cannot vary with the
	// machine's core count (the parallel path's per-worker scratch would
	// otherwise make the gate machine-dependent).
	for _, size := range batchSizes {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 1})
		if err != nil {
			return nil, err
		}
		b, evs, err := brokerWorkload(tree, 1000, pubsub.WithGateways(scaleGateways))
		if err != nil {
			return nil, err
		}
		chunk := evs[:size]
		notes, err := b.PublishBatch(1, chunk)
		if err != nil {
			return nil, err
		}
		msgs, visited, gwVisited := sumCounters(notes)
		res := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := b.PublishBatch(1, chunk); err != nil {
					bb.Fatal(err)
				}
			}
		})
		ar := tree.ArenaStats()
		records = append(records, brokerRecord{
			Name:                   fmt.Sprintf("BrokerBatchCore/b%d", size),
			Engine:                 "core",
			Population:             1000,
			Gateways:               scaleGateways,
			Batch:                  size,
			NsPerEvent:             float64(res.NsPerOp()) / float64(size),
			AllocsPerEvent:         float64(res.AllocsPerOp()) / float64(size),
			MsgsPerEvent:           float64(msgs) / float64(size),
			ScanVisitedPerEvent:    float64(visited) / float64(size),
			GatewayVisitedPerEvent: float64(gwVisited) / float64(size),
			ArenaCap:               ar.Cap,
			ArenaLive:              ar.Live,
			ArenaFree:              ar.Free,
		})
	}

	// Wire engine: the round scheduler is deterministic, so one measured
	// batch pins msgs/event and rounds/batch exactly; wall time is
	// informational.
	cl, err := proto.NewCluster(proto.Config{MinFanout: 2, MaxFanout: 4})
	if err != nil {
		return nil, err
	}
	bp, evs, err := brokerWorkload(cl, 100, pubsub.WithGateways(scaleGateways))
	if err != nil {
		return nil, err
	}
	if st := bp.Repair(); !st.Converged {
		return nil, fmt.Errorf("broker wire overlay did not stabilize")
	}
	for _, size := range batchSizes {
		chunk := evs[:size]
		start := time.Now()
		notes, err := bp.PublishBatch(1, chunk)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		msgs, visited, gwVisited := sumCounters(notes)
		records = append(records, brokerRecord{
			Name:                   fmt.Sprintf("BrokerBatchProto/b%d", size),
			Engine:                 "proto",
			Population:             100,
			Gateways:               scaleGateways,
			Batch:                  size,
			NsPerEvent:             float64(elapsed.Nanoseconds()) / float64(size),
			AllocsPerEvent:         -1,
			MsgsPerEvent:           float64(msgs) / float64(size),
			RoundsPerBatch:         float64(notes[0].Rounds),
			ScanVisitedPerEvent:    float64(visited) / float64(size),
			GatewayVisitedPerEvent: float64(gwVisited) / float64(size),
		})
	}

	// Subscriber-scale sweep: the adaptive policy grows the pool with the
	// population (recorded in Gateways) while the two-level routing tree
	// keeps classification nearly flat; the recorded match-scan cost,
	// routed gateway visits and allocs/event certify it (batch 16 keeps
	// the division float-exact).
	for _, n := range scaleSizes {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 1})
		if err != nil {
			return nil, err
		}
		b, evs, err := brokerWorkload(tree, n, scalePolicy())
		if err != nil {
			return nil, err
		}
		const size = 16
		chunk := evs[:size]
		notes, err := b.PublishBatch(1, chunk)
		if err != nil {
			return nil, err
		}
		msgs, visited, gwVisited := sumCounters(notes)
		res := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := b.PublishBatch(1, chunk); err != nil {
					bb.Fatal(err)
				}
			}
		})
		ar := tree.ArenaStats()
		records = append(records, brokerRecord{
			Name:                   fmt.Sprintf("BrokerScale/n%d", n),
			Engine:                 "core",
			Population:             n,
			Gateways:               b.Gateways(),
			Batch:                  size,
			NsPerEvent:             float64(res.NsPerOp()) / float64(size),
			AllocsPerEvent:         float64(res.AllocsPerOp()) / float64(size),
			MsgsPerEvent:           float64(msgs) / float64(size),
			ScanVisitedPerEvent:    float64(visited) / float64(size),
			GatewayVisitedPerEvent: float64(gwVisited) / float64(size),
			ArenaCap:               ar.Cap,
			ArenaLive:              ar.Live,
			ArenaFree:              ar.Free,
		})
	}

	// Scenario rows: the drift and Zipf-hotspot workloads from
	// internal/workload at 100k subscribers on the adaptive pool.
	scen, err := measureBrokerScenarios()
	if err != nil {
		return nil, err
	}
	records = append(records, scen...)

	// Delivery layer: a frozen consumer behind a bounded drop-oldest queue
	// next to fast consumers. The drop and delivery totals are exact by
	// construction, so the gate pins the never-block contract.
	del, err := measureBrokerDelivery()
	if err != nil {
		return nil, err
	}
	records = append(records, del)

	// Real sockets: cross-daemon publish→notify latency on loopback TCP.
	// Pure wall-clock (the row's gated counters are constant zeros).
	np, err := measureNetPublish()
	if err != nil {
		return nil, err
	}
	return append(records, np), nil
}

// measureBrokerScenarios records the dynamic-workload rows at 100k
// subscribers on the adaptive pool, driven by the internal/workload
// generators (everything seeded, so every counter is exact).
//
// BrokerDrift/n100000: every interest rectangle random-walks three
// ticks (σ = 1% of the world per axis) with an UpdateFilter per move —
// the continuous-motion regime the incremental re-union exists for.
// FullReunions pins how many O(entries) union recomputations the
// boundary-attainment counts could not avoid (moves that leave a
// gateway's union boundary, mostly from world-edge clamping); a rise
// means the shrink path degraded back toward recompute-per-update.
//
// BrokerZipf/n100000: the measured batch lands on Zipf-hotspot points
// (16x16 cells, s=1.5) instead of uniform ones, so the load piles onto
// the few gateways owning the hot cells — the skewed-popularity
// regime's classification cost, pinned.
func measureBrokerScenarios() ([]brokerRecord, error) {
	const (
		n    = 100_000
		size = 16
	)
	w := workload.DefaultWorld()
	rectFilter := func(r geom.Rect) filter.Filter {
		return filter.Range("x", r.Lo(0), r.Hi(0)).And(filter.Range("y", r.Lo(1), r.Hi(1)))
	}
	build := func() (*core.Tree, *pubsub.Broker, []geom.Rect, *rand.Rand, error) {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 1})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		b, err := pubsub.New(filter.MustSpace("x", "y"), tree, scalePolicy())
		if err != nil {
			return nil, nil, nil, nil, err
		}
		rng := rand.New(rand.NewPCG(n, 0xD21F70))
		rects := workload.Subscriptions(rng, w, workload.Uniform, n)
		for i, r := range rects {
			if err := b.Subscribe(core.ProcID(i+1), rectFilter(r)); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		return tree, b, rects, rng, nil
	}
	measure := func(name string, tree *core.Tree, b *pubsub.Broker, evs []filter.Event) (brokerRecord, error) {
		notes, err := b.PublishBatch(1, evs)
		if err != nil {
			return brokerRecord{}, err
		}
		msgs, visited, gwVisited := sumCounters(notes)
		res := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if _, err := b.PublishBatch(1, evs); err != nil {
					bb.Fatal(err)
				}
			}
		})
		ar := tree.ArenaStats()
		return brokerRecord{
			Name:                   name,
			Engine:                 "core",
			Population:             n,
			Gateways:               b.Gateways(),
			Batch:                  size,
			NsPerEvent:             float64(res.NsPerOp()) / float64(size),
			AllocsPerEvent:         float64(res.AllocsPerOp()) / float64(size),
			MsgsPerEvent:           float64(msgs) / float64(size),
			ScanVisitedPerEvent:    float64(visited) / float64(size),
			GatewayVisitedPerEvent: float64(gwVisited) / float64(size),
			FullReunions:           fullReunions(b),
			ArenaCap:               ar.Cap,
			ArenaLive:              ar.Live,
			ArenaFree:              ar.Free,
		}, nil
	}
	toEvents := func(pts []geom.Point) []filter.Event {
		evs := make([]filter.Event, len(pts))
		for i, p := range pts {
			evs[i] = filter.Event{"x": p[0], "y": p[1]}
		}
		return evs
	}

	var records []brokerRecord

	// Drift: three random-walk ticks of UpdateFilter churn over the whole
	// population, then a uniform measured batch.
	tree, b, rects, rng, err := build()
	if err != nil {
		return nil, err
	}
	for tick := 0; tick < 3; tick++ {
		rects = workload.DriftRects(rng, w, rects, 0.01)
		for i, r := range rects {
			if err := b.UpdateFilter(core.ProcID(i+1), rectFilter(r)); err != nil {
				return nil, err
			}
		}
	}
	drift, err := measure("BrokerDrift/n100000", tree, b,
		toEvents(workload.Events(rng, w, workload.UniformEvents, size, nil)))
	if err != nil {
		return nil, err
	}
	records = append(records, drift)

	// Zipf: same subscription population, hotspot event stream.
	tree, b, _, rng, err = build()
	if err != nil {
		return nil, err
	}
	zipf, err := measure("BrokerZipf/n100000", tree, b,
		toEvents(workload.ZipfEvents(rng, w, size, 16, 1.5)))
	if err != nil {
		return nil, err
	}
	return append(records, zipf), nil
}

// measureBrokerDelivery runs the frozen-consumer delivery scenario: four
// whole-domain subscribers on a 4-gateway pool, three draining instantly
// and one frozen inside its handler behind a 32-slot drop-oldest queue.
// One event is published and trapped in the frozen handler, then the
// remaining 255 are published while the consumer stays stuck — the
// publisher must never block, the fast consumers must receive all 256
// events each, and the frozen queue must keep exactly its newest 32.
// Every total is deterministic: delivered = 3*256 + (1 trapped + 32
// queued) = 801, dropped = 255 - 32 = 223.
func measureBrokerDelivery() (brokerRecord, error) {
	const (
		events    = 256
		gws       = 4
		frozenCap = 32
		fast      = 3
		frozenID  = core.ProcID(fast + 1)
	)
	tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4, PublishWorkers: 1})
	if err != nil {
		return brokerRecord{}, err
	}
	b, err := pubsub.New(filter.MustSpace("x", "y"), tree, pubsub.WithGateways(gws))
	if err != nil {
		return brokerRecord{}, err
	}
	defer b.Close()
	all := filter.Range("x", 0, 1000).And(filter.Range("y", 0, 1000))
	for id := 1; id <= fast; id++ {
		err := b.SubscribeFunc(core.ProcID(id), all,
			func(pubsub.Envelope) error { return nil },
			pubsub.WithQueueDepth(events))
		if err != nil {
			return brokerRecord{}, err
		}
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	err = b.SubscribeFunc(frozenID, all, func(pubsub.Envelope) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}, pubsub.WithQueueDepth(frozenCap))
	if err != nil {
		return brokerRecord{}, err
	}

	rng := rand.New(rand.NewPCG(events, 0xF2023E))
	evs := make([]filter.Event, events)
	for k := range evs {
		evs[k] = filter.Event{"x": rng.Float64() * 1000, "y": rng.Float64() * 1000}
	}
	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("broker delivery scenario: timed out waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}
	delivered := func(id core.ProcID) uint64 {
		st, ok := b.DeliveryStatsOf(id)
		if !ok {
			return 0
		}
		return st.Delivered
	}

	// Trap the frozen consumer inside its handler with the first event,
	// so its queue depth is pinned before the flood arrives.
	start := time.Now()
	notes, err := b.PublishBatch(1, evs[:1])
	if err != nil {
		return brokerRecord{}, err
	}
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		return brokerRecord{}, fmt.Errorf("broker delivery scenario: frozen handler never entered")
	}
	flood, err := b.PublishBatch(1, evs[1:])
	if err != nil {
		return brokerRecord{}, err
	}
	notes = append(notes, flood...)
	for id := 1; id <= fast; id++ {
		id := core.ProcID(id)
		if err := waitFor(fmt.Sprintf("fast consumer %d", id), func() bool { return delivered(id) == events }); err != nil {
			return brokerRecord{}, err
		}
	}
	// Thaw the consumer; it finishes the trapped event plus the newest
	// frozenCap survivors of the flood.
	close(release)
	if err := waitFor("frozen consumer drain", func() bool { return delivered(frozenID) == 1+frozenCap }); err != nil {
		return brokerRecord{}, err
	}
	elapsed := time.Since(start)

	var deliveredTotal, droppedTotal int64
	for _, st := range b.DeliveryStats() {
		deliveredTotal += int64(st.Delivered)
		droppedTotal += int64(st.Dropped)
	}
	msgs, visited, gwVisited := sumCounters(notes)
	ar := tree.ArenaStats()
	return brokerRecord{
		Name:                   "BrokerDeliveryFrozen",
		Engine:                 "core",
		Population:             fast + 1,
		Gateways:               gws,
		Batch:                  events,
		NsPerEvent:             float64(elapsed.Nanoseconds()) / float64(events),
		AllocsPerEvent:         -1, // concurrent drainers make allocs nondeterministic
		MsgsPerEvent:           float64(msgs) / float64(events),
		ScanVisitedPerEvent:    float64(visited) / float64(events),
		GatewayVisitedPerEvent: float64(gwVisited) / float64(events),
		ArenaCap:               ar.Cap,
		ArenaLive:              ar.Live,
		ArenaFree:              ar.Free,
		DeliveredEvents:        deliveredTotal,
		DroppedEvents:          droppedTotal,
	}, nil
}

// runBenchBroker records the broker batch-pipeline baselines to path.
func runBenchBroker(path string) int {
	records, err := measureBenchBroker()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeJSON(path, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, r := range records {
		if r.NetP50Ns > 0 {
			fmt.Printf("%-22s publish→notify p50 %s p99 %s over loopback TCP (%d samples)\n",
				r.Name, time.Duration(r.NetP50Ns), time.Duration(r.NetP99Ns), r.Batch)
			continue
		}
		fmt.Printf("%-22s %10.0f ns/event %8.2f allocs/event %8.2f msgs/event %6.0f rounds/batch %8.2f scan-visits/event %6.2f gw-visits/event %4d gateways %5d delivered %5d dropped\n",
			r.Name, r.NsPerEvent, r.AllocsPerEvent, r.MsgsPerEvent, r.RoundsPerBatch, r.ScanVisitedPerEvent,
			r.GatewayVisitedPerEvent, r.Gateways, r.DeliveredEvents, r.DroppedEvents)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// gateViolations diffs the deterministic counters of the three suites
// against the committed baselines, returning one message per mismatch.
// Wall-clock and byte counters are never compared; a mismatch in either
// direction fails (an improvement means the baseline must be re-recorded
// and committed so the win is locked in).
func gateViolations(coreGot, coreWant []benchRecord, protoGot, protoWant []protoRecord, brokerGot, brokerWant []brokerRecord) []string {
	var out []string
	mismatch := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if len(coreGot) != len(coreWant) {
		mismatch("core: %d records, baseline has %d", len(coreGot), len(coreWant))
	} else {
		for i := range coreGot {
			g, w := coreGot[i], coreWant[i]
			if g.Name != w.Name {
				mismatch("core[%d]: name %q, baseline %q", i, g.Name, w.Name)
			} else {
				if g.AllocsPerOp != w.AllocsPerOp {
					mismatch("core %s: %d allocs/op, baseline %d", g.Name, g.AllocsPerOp, w.AllocsPerOp)
				}
				if g.ArenaCap != w.ArenaCap || g.ArenaLive != w.ArenaLive || g.ArenaFree != w.ArenaFree {
					mismatch("core %s: arena cap/live/free %d/%d/%d, baseline %d/%d/%d",
						g.Name, g.ArenaCap, g.ArenaLive, g.ArenaFree, w.ArenaCap, w.ArenaLive, w.ArenaFree)
				}
			}
		}
	}
	if len(protoGot) != len(protoWant) {
		mismatch("proto: %d records, baseline has %d", len(protoGot), len(protoWant))
	} else {
		for i := range protoGot {
			g, w := protoGot[i], protoWant[i]
			if g.Name != w.Name {
				mismatch("proto[%d]: name %q, baseline %q", i, g.Name, w.Name)
				continue
			}
			if g.RoundsPerPublish != w.RoundsPerPublish {
				mismatch("proto %s: %.4f rounds/publish, baseline %.4f", g.Name, g.RoundsPerPublish, w.RoundsPerPublish)
			}
			if g.MsgsPerPublish != w.MsgsPerPublish {
				mismatch("proto %s: %.4f msgs/publish, baseline %.4f", g.Name, g.MsgsPerPublish, w.MsgsPerPublish)
			}
			if g.MsgsPerRound != w.MsgsPerRound {
				mismatch("proto %s: %.4f msgs/round, baseline %.4f", g.Name, g.MsgsPerRound, w.MsgsPerRound)
			}
		}
	}
	if len(brokerGot) != len(brokerWant) {
		mismatch("broker: %d records, baseline has %d", len(brokerGot), len(brokerWant))
	} else {
		for i := range brokerGot {
			g, w := brokerGot[i], brokerWant[i]
			if g.Name != w.Name {
				mismatch("broker[%d]: name %q, baseline %q", i, g.Name, w.Name)
				continue
			}
			// Pool size is deterministic even under the adaptive policy
			// (growth follows only the seeded subscription stream), so a
			// drift means the sizing behaviour itself changed.
			if g.Gateways != w.Gateways {
				mismatch("broker %s: %d gateways, baseline %d", g.Name, g.Gateways, w.Gateways)
			}
			if g.MsgsPerEvent != w.MsgsPerEvent {
				mismatch("broker %s: %.4f msgs/event, baseline %.4f", g.Name, g.MsgsPerEvent, w.MsgsPerEvent)
			}
			if g.RoundsPerBatch != w.RoundsPerBatch {
				mismatch("broker %s: %.0f rounds/batch, baseline %.0f", g.Name, g.RoundsPerBatch, w.RoundsPerBatch)
			}
			if g.ScanVisitedPerEvent != w.ScanVisitedPerEvent {
				mismatch("broker %s: %.4f scan-visits/event, baseline %.4f", g.Name, g.ScanVisitedPerEvent, w.ScanVisitedPerEvent)
			}
			if g.GatewayVisitedPerEvent != w.GatewayVisitedPerEvent {
				mismatch("broker %s: %.4f gateway-visits/event, baseline %.4f", g.Name, g.GatewayVisitedPerEvent, w.GatewayVisitedPerEvent)
			}
			if g.FullReunions != w.FullReunions {
				mismatch("broker %s: %d full re-unions, baseline %d", g.Name, g.FullReunions, w.FullReunions)
			}
			// Allocation counts are gated only where both sides measured
			// them (the wire engine's grow-only actor state makes its
			// allocs non-constant, recorded as -1).
			if g.AllocsPerEvent >= 0 && w.AllocsPerEvent >= 0 && g.AllocsPerEvent != w.AllocsPerEvent {
				mismatch("broker %s: %.4f allocs/event, baseline %.4f", g.Name, g.AllocsPerEvent, w.AllocsPerEvent)
			}
			// Arena residency is exact for core-engine records and zero on
			// both sides for the wire engine, so a plain comparison covers
			// every row.
			if g.ArenaCap != w.ArenaCap || g.ArenaLive != w.ArenaLive || g.ArenaFree != w.ArenaFree {
				mismatch("broker %s: arena cap/live/free %d/%d/%d, baseline %d/%d/%d",
					g.Name, g.ArenaCap, g.ArenaLive, g.ArenaFree, w.ArenaCap, w.ArenaLive, w.ArenaFree)
			}
			// Delivery totals are exact for the frozen-consumer scenario
			// and zero on both sides everywhere else; a drift means the
			// backpressure contract (what bounded queues keep and shed)
			// changed.
			if g.DeliveredEvents != w.DeliveredEvents {
				mismatch("broker %s: %d delivered events, baseline %d", g.Name, g.DeliveredEvents, w.DeliveredEvents)
			}
			if g.DroppedEvents != w.DroppedEvents {
				mismatch("broker %s: %d dropped events, baseline %d", g.Name, g.DroppedEvents, w.DroppedEvents)
			}
		}
	}
	return out
}

// runGate re-runs every benchmark suite and compares the deterministic
// counters against the committed baselines in the current directory.
func runGate() int {
	var coreWant []benchRecord
	var protoWant []protoRecord
	var brokerWant []brokerRecord
	for path, v := range map[string]any{
		"BENCH_core.json":   &coreWant,
		"BENCH_proto.json":  &protoWant,
		"BENCH_broker.json": &brokerWant,
	} {
		if err := readJSONStrict(path, v); err != nil {
			fmt.Fprintf(os.Stderr, "perf-gate: reading %s: %v\n", path, err)
			return 1
		}
	}
	coreGot := measureBenchCore()
	protoGot, err := measureBenchProto()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf-gate: proto suite: %v\n", err)
		return 1
	}
	brokerGot, err := measureBenchBroker()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf-gate: broker suite: %v\n", err)
		return 1
	}
	violations := gateViolations(coreGot, coreWant, protoGot, protoWant, brokerGot, brokerWant)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "perf-gate: MISMATCH %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "perf-gate: deterministic counters drifted from the committed baselines.")
		fmt.Fprintln(os.Stderr, "perf-gate: if the change is intended (a recorded win or an accepted cost), re-run")
		fmt.Fprintln(os.Stderr, "perf-gate:   drtree-bench -bench-core BENCH_core.json -- then -bench-proto / -bench-broker likewise --")
		fmt.Fprintln(os.Stderr, "perf-gate: and commit the refreshed baselines with the change.")
		return 1
	}
	fmt.Printf("perf-gate: OK — %d core, %d proto, %d broker records match the committed baselines\n",
		len(coreGot), len(protoGot), len(brokerGot))
	return 0
}

// runLoadgen builds a gateway broker over the sequential engine and, for
// each publisher count, streams a fixed event load through PublishBatch
// from that many concurrent goroutines, printing the wall-clock
// throughput. The broker's per-gateway locks keep the match scans
// parallel; the overlay traversal serializes behind the engine mutex, so
// the scaling shows how much of the pipeline the gateway layer took off
// the critical path.
func runLoadgen(pubCounts []int, subs, gateways, events, batchSize int) int {
	if subs < 1 || gateways < 1 || events < 1 || batchSize < 1 {
		fmt.Fprintln(os.Stderr, "drtree-bench: -loadgen sizes must be positive")
		return 1
	}
	fmt.Printf("loadgen: %d subscribers on %d gateways, %d events per row, batch size %d\n",
		subs, gateways, events, batchSize)
	fmt.Printf("%-12s %12s %14s %14s\n", "publishers", "wall (ms)", "events/sec", "msgs/event")
	for _, p := range pubCounts {
		tree, err := core.New(core.Params{MinFanout: 2, MaxFanout: 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		b, evs, err := brokerWorkload(tree, subs, pubsub.WithGateways(gateways))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		var wg sync.WaitGroup
		var totalMsgs int64
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		for w := 0; w < p; w++ {
			// Distribute the remainder so exactly `events` are published
			// whatever the publisher count.
			perPub := events / p
			if w < events%p {
				perPub++
			}
			wg.Add(1)
			go func(w, perPub int) {
				defer wg.Done()
				producer := core.ProcID(1 + w%subs)
				msgs := int64(0)
				var err error
				for done := 0; done < perPub && err == nil; {
					n := min(batchSize, perPub-done)
					chunk := make([]filter.Event, n)
					for i := range chunk {
						chunk[i] = evs[(done+i)%len(evs)]
					}
					var notes []pubsub.Notification
					notes, err = b.PublishBatch(producer, chunk)
					for _, note := range notes {
						msgs += int64(note.Messages)
					}
					done += n
				}
				mu.Lock()
				totalMsgs += msgs
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}(w, perPub)
		}
		wg.Wait()
		wall := time.Since(start)
		if firstErr != nil {
			fmt.Fprintf(os.Stderr, "drtree-bench: loadgen publish failed: %v\n", firstErr)
			return 1
		}
		fmt.Printf("%-12d %12.1f %14.0f %14.2f\n",
			p, float64(wall.Microseconds())/1000,
			float64(events)/wall.Seconds(),
			float64(totalMsgs)/float64(events))
	}
	return 0
}
