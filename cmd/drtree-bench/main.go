// Command drtree-bench regenerates the paper's quantitative artifacts
// (experiments E1-E10, see DESIGN.md §3) and prints one paper-style table
// per experiment.
//
// Usage:
//
//	drtree-bench [-seed N] [-exp E1,E5,E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"drtree/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "random seed for all experiments")
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		if e = strings.TrimSpace(strings.ToUpper(e)); e != "" {
			want[e] = true
		}
	}

	runners := []struct {
		id  string
		run func() experiments.Result
	}{
		{"E1", experiments.RunE1},
		{"E2", func() experiments.Result { return experiments.RunE2(*seed, []int{100, 400, 1600}) }},
		{"E3", func() experiments.Result { return experiments.RunE3(*seed, []int{100, 400, 1600}) }},
		{"E4", func() experiments.Result { return experiments.RunE4(*seed, []int{100, 400}) }},
		{"E5", func() experiments.Result { return experiments.RunE5(*seed, 60, 20) }},
		{"E6", func() experiments.Result { return experiments.RunE6(*seed, 150, 300) }},
		{"E7", func() experiments.Result { return experiments.RunE7(*seed, 30, []float64{5, 15, 30, 60}) }},
		{"E8", func() experiments.Result { return experiments.RunE8(*seed, 200, 300) }},
		{"E9", func() experiments.Result { return experiments.RunE9(*seed, 120, 300) }},
		{"E10", func() experiments.Result { return experiments.RunE10(*seed, 100, 400) }},
	}

	failures := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		res := r.run()
		fmt.Println(res)
		if res.Err != nil {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	return 0
}
