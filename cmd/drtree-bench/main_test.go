package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchCoreSmoke runs the -bench-core path into a temp file and
// validates that the recorded JSON matches the schema of the committed
// BENCH_core.json baseline: same benchmark names in the same order, same
// fields, plausible values. This keeps the baseline artifact and the
// recorder from drifting apart silently.
func TestBenchCoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchCore(path); code != 0 {
		t.Fatalf("runBenchCore exited %d", code)
	}
	got := decodeRecords(t, path)
	committed := decodeRecords(t, filepath.Join("..", "..", "BENCH_core.json"))

	if len(got) != len(committed) {
		t.Fatalf("recorded %d benchmarks, baseline has %d", len(got), len(committed))
	}
	for i := range got {
		if got[i].Name != committed[i].Name {
			t.Errorf("benchmark %d: name %q, baseline %q", i, got[i].Name, committed[i].Name)
		}
		if got[i].NsPerOp <= 0 || got[i].BytesPerOp <= 0 || got[i].AllocsPerOp <= 0 {
			t.Errorf("benchmark %s: non-positive measurement %+v", got[i].Name, got[i])
		}
		// Arena residency is a deterministic workload fingerprint: it
		// must reproduce the committed values exactly, and the books
		// must balance (live + free slots account for the whole arena).
		if got[i].ArenaCap != committed[i].ArenaCap ||
			got[i].ArenaLive != committed[i].ArenaLive ||
			got[i].ArenaFree != committed[i].ArenaFree {
			t.Errorf("benchmark %s: arena cap/live/free %d/%d/%d, baseline %d/%d/%d",
				got[i].Name, got[i].ArenaCap, got[i].ArenaLive, got[i].ArenaFree,
				committed[i].ArenaCap, committed[i].ArenaLive, committed[i].ArenaFree)
		}
		if got[i].ArenaCap <= 0 || got[i].ArenaLive <= 0 ||
			got[i].ArenaLive+got[i].ArenaFree != got[i].ArenaCap {
			t.Errorf("benchmark %s: arena books do not balance: %+v", got[i].Name, got[i])
		}
	}
}

// decodeRecords parses a baselines file strictly: unknown or missing
// fields mean the schema drifted.
func decodeRecords(t *testing.T, path string) []benchRecord {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var recs []benchRecord
	if err := dec.Decode(&recs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}

// TestBenchProtoSmoke runs the -bench-proto path into a temp file and
// validates that the recorded JSON matches the schema of the committed
// BENCH_proto.json baseline, mirroring TestBenchCoreSmoke. The proto
// benchmark is fully deterministic (round scheduler + pinned PCG seeds),
// so the recorded values must equal the committed ones exactly.
func TestBenchProtoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchProto(path); code != 0 {
		t.Fatalf("runBenchProto exited %d", code)
	}
	got := decodeProtoRecords(t, path)
	committed := decodeProtoRecords(t, filepath.Join("..", "..", "BENCH_proto.json"))

	if len(got) != len(committed) {
		t.Fatalf("recorded %d benchmarks, baseline has %d", len(got), len(committed))
	}
	for i := range got {
		if got[i] != committed[i] {
			t.Errorf("benchmark %d: recorded %+v, baseline %+v", i, got[i], committed[i])
		}
		if got[i].RoundsPerPublish <= 0 || got[i].MsgsPerPublish <= 0 || got[i].MsgsPerRound <= 0 {
			t.Errorf("benchmark %s: non-positive measurement %+v", got[i].Name, got[i])
		}
	}
}

// TestBenchBrokerSmoke runs the -bench-broker path into a temp file and
// validates the recorded JSON against the committed BENCH_broker.json
// baseline: same schema, and exact equality on every deterministic
// counter (allocs/event where measured, msgs/event, rounds/batch) —
// the same comparison the CI perf gate enforces.
func TestBenchBrokerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchBroker(path); code != 0 {
		t.Fatalf("runBenchBroker exited %d", code)
	}
	got := decodeBrokerRecords(t, path)
	committed := decodeBrokerRecords(t, filepath.Join("..", "..", "BENCH_broker.json"))

	if len(got) != len(committed) {
		t.Fatalf("recorded %d benchmarks, baseline has %d", len(got), len(committed))
	}
	for i := range got {
		g, w := got[i], committed[i]
		if g.Name != w.Name || g.Engine != w.Engine || g.Population != w.Population ||
			g.Gateways != w.Gateways || g.Batch != w.Batch {
			t.Errorf("benchmark %d: identity %+v, baseline %+v", i, g, w)
			continue
		}
		if g.MsgsPerEvent != w.MsgsPerEvent || g.RoundsPerBatch != w.RoundsPerBatch ||
			g.ScanVisitedPerEvent != w.ScanVisitedPerEvent ||
			g.GatewayVisitedPerEvent != w.GatewayVisitedPerEvent ||
			g.FullReunions != w.FullReunions {
			t.Errorf("benchmark %s: deterministic counters %+v, baseline %+v", g.Name, g, w)
		}
		if g.AllocsPerEvent >= 0 && g.AllocsPerEvent != w.AllocsPerEvent {
			t.Errorf("benchmark %s: %.4f allocs/event, baseline %.4f", g.Name, g.AllocsPerEvent, w.AllocsPerEvent)
		}
		if g.DeliveredEvents != w.DeliveredEvents || g.DroppedEvents != w.DroppedEvents {
			t.Errorf("benchmark %s: delivered/dropped %d/%d, baseline %d/%d",
				g.Name, g.DeliveredEvents, g.DroppedEvents, w.DeliveredEvents, w.DroppedEvents)
		}
		if g.NsPerEvent <= 0 && g.NetP50Ns <= 0 {
			t.Errorf("benchmark %s: non-positive wall measurement %+v", g.Name, g)
		}
		if g.NetP50Ns > g.NetP99Ns {
			t.Errorf("benchmark %s: p50 %dns above p99 %dns", g.Name, g.NetP50Ns, g.NetP99Ns)
		}
	}
	assertSublinearScale(t, got)
	assertFrozenDelivery(t, got)
}

// assertFrozenDelivery pins the delivery scenario's totals to the values
// that follow from its construction: three fast whole-domain consumers
// receive all 256 events each, the frozen consumer finishes the one event
// trapped in its handler plus the newest 32 survivors of its drop-oldest
// queue, and everything else is shed. If either total moves, the bounded
// queues changed what they keep or drop under a stalled consumer.
func assertFrozenDelivery(t *testing.T, recs []brokerRecord) {
	t.Helper()
	for _, r := range recs {
		if r.Name != "BrokerDeliveryFrozen" {
			if r.DeliveredEvents != 0 || r.DroppedEvents != 0 {
				t.Errorf("benchmark %s: unexpected delivery counters %d/%d on a pipeline row",
					r.Name, r.DeliveredEvents, r.DroppedEvents)
			}
			continue
		}
		if want := int64(3*256 + 1 + 32); r.DeliveredEvents != want {
			t.Errorf("frozen scenario delivered %d events, want %d", r.DeliveredEvents, want)
		}
		if want := int64(255 - 32); r.DroppedEvents != want {
			t.Errorf("frozen scenario dropped %d events, want %d", r.DroppedEvents, want)
		}
		return
	}
	t.Error("BrokerDeliveryFrozen record missing from the broker sweep")
}

// assertSublinearScale enforces the adaptive gateway tier's scaling
// contract on the recorded subscriber-scale sweep: the per-event
// classification cost (routing-tree plus match-index nodes visited)
// must stay within ~2x of the 1k-subscriber floor all the way to one
// million subscribers — nearly flat where the old global scan grew
// 100x/1000x — while the policy actually grows the pool, and the
// routing tree keeps the visited gateways per event far below it.
func assertSublinearScale(t *testing.T, recs []brokerRecord) {
	t.Helper()
	byName := map[string]brokerRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	lo, okLo := byName["BrokerScale/n1000"]
	if !okLo || lo.ScanVisitedPerEvent <= 0 {
		t.Fatalf("no scan cost recorded at n=1000: %+v", lo)
	}
	for name, bound := range map[string]float64{
		"BrokerScale/n100000":  2,
		"BrokerScale/n1000000": 2,
	} {
		hi, ok := byName[name]
		if !ok {
			t.Fatalf("scale sweep record %s missing from BENCH_broker.json", name)
		}
		if hi.Gateways <= lo.Gateways {
			t.Fatalf("adaptive sweep pool did not grow: %d gateways at %s vs %d at n=1000",
				hi.Gateways, name, lo.Gateways)
		}
		if hi.GatewayVisitedPerEvent > float64(hi.Gateways)/4 {
			t.Errorf("routing tree barely prunes at %s: %.2f of %d gateways visited per event",
				name, hi.GatewayVisitedPerEvent, hi.Gateways)
		}
		if ratio := hi.ScanVisitedPerEvent / lo.ScanVisitedPerEvent; ratio > bound {
			t.Errorf("match-scan cost grew %.2fx from 1k to %s (want <= %.0fx): %+v vs %+v",
				ratio, name, bound, hi, lo)
		}
	}
}

// decodeBrokerRecords parses a broker baselines file strictly.
func decodeBrokerRecords(t *testing.T, path string) []brokerRecord {
	t.Helper()
	var recs []brokerRecord
	if err := readJSONStrict(path, &recs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}

// TestGateViolations exercises the perf gate's comparison rules on
// synthetic records: identical inputs pass; drift in any deterministic
// counter (either direction) fails; wall-clock drift never fails;
// unmeasured alloc counts (-1) are exempt.
func TestGateViolations(t *testing.T) {
	coreRecs := []benchRecord{{Name: "J", NsPerOp: 100, BytesPerOp: 5, AllocsPerOp: 42, ArenaCap: 6, ArenaLive: 6}}
	protoRecs := []protoRecord{{Name: "P", Population: 100, Events: 10, RoundsPerPublish: 3, MsgsPerPublish: 7, MsgsPerRound: 2.5}}
	brokerRecs := []brokerRecord{
		{Name: "B/core", Engine: "core", Population: 10, Gateways: 4, Batch: 16, NsPerEvent: 50, AllocsPerEvent: 2.5, MsgsPerEvent: 7, ScanVisitedPerEvent: 12, GatewayVisitedPerEvent: 2},
		{Name: "B/proto", Engine: "proto", Population: 10, Gateways: 4, Batch: 16, NsPerEvent: 50, AllocsPerEvent: -1, MsgsPerEvent: 6, RoundsPerBatch: 4, ScanVisitedPerEvent: 12, GatewayVisitedPerEvent: 3},
	}
	clone := func() ([]benchRecord, []protoRecord, []brokerRecord) {
		return append([]benchRecord(nil), coreRecs...),
			append([]protoRecord(nil), protoRecs...),
			append([]brokerRecord(nil), brokerRecs...)
	}

	if v := gateViolations(coreRecs, coreRecs, protoRecs, protoRecs, brokerRecs, brokerRecs); len(v) != 0 {
		t.Fatalf("identical records must pass, got %v", v)
	}

	c, p, b := clone()
	c[0].NsPerOp, p[0].Events, b[0].NsPerEvent = 9999, 10, 9999
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 0 {
		t.Errorf("wall-clock drift must not fail the gate: %v", v)
	}

	c, p, b = clone()
	c[0].AllocsPerOp = 41 // an improvement still requires re-recording
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 1 {
		t.Errorf("core alloc drift must fail once, got %v", v)
	}

	c, p, b = clone()
	p[0].MsgsPerPublish = 8
	b[1].RoundsPerBatch = 5
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 2 {
		t.Errorf("proto msgs + broker rounds drift must fail twice, got %v", v)
	}

	c, p, b = clone()
	b[1].AllocsPerEvent = 3 // baseline recorded -1: exempt
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 0 {
		t.Errorf("unmeasured alloc baseline must be exempt, got %v", v)
	}

	c, p, b = clone()
	b[0].ScanVisitedPerEvent = 13 // the match-scan cost is gated too
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 1 {
		t.Errorf("scan-visit drift must fail once, got %v", v)
	}

	c, p, b = clone()
	b[0].GatewayVisitedPerEvent = 4 // weaker routing-tree pruning is a regression
	b[1].Gateways = 8               // so is an adaptive pool sized differently
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 2 {
		t.Errorf("gateway-visit + pool-size drift must fail twice, got %v", v)
	}

	c, p, b = clone()
	b[0].FullReunions = 3 // an incremental re-union falling back to O(n) is gated
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 1 {
		t.Errorf("full re-union drift must fail once, got %v", v)
	}

	c, p, b = clone()
	b[0].DeliveredEvents = 800 // a lost delivery is a gated regression
	b[1].DroppedEvents = 1     // so is a queue shedding events it used to keep
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 2 {
		t.Errorf("delivery-counter drift must fail twice, got %v", v)
	}

	c, p, b = clone()
	c[0].ArenaLive = 7 // a leaked handle shows up as residency drift
	b[0].ArenaFree = 1 // so does a recycling regression in the broker sweep
	if v := gateViolations(c, coreRecs, p, protoRecs, b, brokerRecs); len(v) != 2 {
		t.Errorf("arena residency drift must fail twice, got %v", v)
	}

	if v := gateViolations(nil, coreRecs, protoRecs, protoRecs, brokerRecs, brokerRecs); len(v) != 1 {
		t.Errorf("record-count drift must fail, got %v", v)
	}
}

// TestGateEndToEnd runs the real perf gate from the repository root: it
// must re-measure all three suites and find them exactly equal to the
// committed baselines. This is the same invocation the CI perf-gate job
// uses, so a drifted baseline fails here first.
func TestGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all benchmark suites")
	}
	t.Chdir(filepath.Join("..", ".."))
	if code := runGate(); code != 0 {
		t.Fatalf("runGate exited %d against the committed baselines", code)
	}
}

// TestGateMissingBaseline covers the gate's unreadable-baseline path.
func TestGateMissingBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	if code := runGate(); code == 0 {
		t.Fatal("runGate must fail without committed baselines")
	}
}

// TestParseIntList covers the -loadgen-publishers parser.
func TestParseIntList(t *testing.T) {
	if got, err := parseIntList("1, 2,8"); err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseIntList: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-2"} {
		if _, err := parseIntList(bad); err == nil {
			t.Errorf("parseIntList(%q) must error", bad)
		}
	}
}

// TestLoadgenSmoke runs a tiny loadgen sweep end to end.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("publishes a real event load")
	}
	if code := runLoadgen([]int{1, 2}, 50, 4, 400, 16); code != 0 {
		t.Fatalf("runLoadgen exited %d", code)
	}
	if code := runLoadgen([]int{1}, 0, 1, 1, 1); code == 0 {
		t.Fatal("invalid sizes must fail")
	}
	if code := runLoadgen([]int{1}, 10, 0, 1, 1); code == 0 {
		t.Fatal("invalid gateway count must fail")
	}
}

// decodeProtoRecords parses a proto baselines file strictly: unknown or
// missing fields mean the schema drifted.
func decodeProtoRecords(t *testing.T, path string) []protoRecord {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var recs []protoRecord
	if err := dec.Decode(&recs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}
