package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchCoreSmoke runs the -bench-core path into a temp file and
// validates that the recorded JSON matches the schema of the committed
// BENCH_core.json baseline: same benchmark names in the same order, same
// fields, plausible values. This keeps the baseline artifact and the
// recorder from drifting apart silently.
func TestBenchCoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchCore(path); code != 0 {
		t.Fatalf("runBenchCore exited %d", code)
	}
	got := decodeRecords(t, path)
	committed := decodeRecords(t, filepath.Join("..", "..", "BENCH_core.json"))

	if len(got) != len(committed) {
		t.Fatalf("recorded %d benchmarks, baseline has %d", len(got), len(committed))
	}
	for i := range got {
		if got[i].Name != committed[i].Name {
			t.Errorf("benchmark %d: name %q, baseline %q", i, got[i].Name, committed[i].Name)
		}
		if got[i].NsPerOp <= 0 || got[i].BytesPerOp <= 0 || got[i].AllocsPerOp <= 0 {
			t.Errorf("benchmark %s: non-positive measurement %+v", got[i].Name, got[i])
		}
	}
}

// decodeRecords parses a baselines file strictly: unknown or missing
// fields mean the schema drifted.
func decodeRecords(t *testing.T, path string) []benchRecord {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var recs []benchRecord
	if err := dec.Decode(&recs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}

// TestBenchProtoSmoke runs the -bench-proto path into a temp file and
// validates that the recorded JSON matches the schema of the committed
// BENCH_proto.json baseline, mirroring TestBenchCoreSmoke. The proto
// benchmark is fully deterministic (round scheduler + pinned PCG seeds),
// so the recorded values must equal the committed ones exactly.
func TestBenchProtoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchProto(path); code != 0 {
		t.Fatalf("runBenchProto exited %d", code)
	}
	got := decodeProtoRecords(t, path)
	committed := decodeProtoRecords(t, filepath.Join("..", "..", "BENCH_proto.json"))

	if len(got) != len(committed) {
		t.Fatalf("recorded %d benchmarks, baseline has %d", len(got), len(committed))
	}
	for i := range got {
		if got[i] != committed[i] {
			t.Errorf("benchmark %d: recorded %+v, baseline %+v", i, got[i], committed[i])
		}
		if got[i].RoundsPerPublish <= 0 || got[i].MsgsPerPublish <= 0 || got[i].MsgsPerRound <= 0 {
			t.Errorf("benchmark %s: non-positive measurement %+v", got[i].Name, got[i])
		}
	}
}

// decodeProtoRecords parses a proto baselines file strictly: unknown or
// missing fields mean the schema drifted.
func decodeProtoRecords(t *testing.T, path string) []protoRecord {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var recs []protoRecord
	if err := dec.Decode(&recs); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}
