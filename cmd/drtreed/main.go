// Command drtreed runs one daemon of a real-network DR-tree pub/sub
// deployment (see internal/drtreed). Each daemon owns a slice of the
// overlay's process-ID space, speaks the framed binary wire protocol to
// its peers over TCP, and fronts subscribers on two substrates: binary
// RPC sessions on the overlay port and JSON WebSocket sessions on the
// HTTP port.
//
// A two-daemon deployment on one machine:
//
//	drtreed -node 0 -peers 127.0.0.1:7070,127.0.0.1:7071 -http 127.0.0.1:8080
//	drtreed -node 1 -peers 127.0.0.1:7070,127.0.0.1:7071 -http 127.0.0.1:8081
//
// Daemon 0 seeds the shared overlay (the anchor process); the others
// join through it. Subscribers may attach to any daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"drtree/internal/drtreed"
)

func main() {
	var (
		node     = flag.Int("node", 0, "this daemon's index into -peers")
		peers    = flag.String("peers", "127.0.0.1:7070", "comma-separated overlay addresses, one per daemon")
		httpAddr = flag.String("http", "", "WebSocket/health endpoint address (empty: disabled)")
		space    = flag.String("space", "price,volume", "comma-separated attribute names (identical on every daemon)")
		gateways = flag.Int("gateways", 4, "local gateway-pool size")
		minFan   = flag.Int("min-fanout", 2, "DR-tree minimum fanout m")
		maxFan   = flag.Int("max-fanout", 4, "DR-tree maximum fanout M (>= 2m)")
		dataDir  = flag.String("data-dir", "", "durable state directory: subscriptions survive restarts (empty: memory-only)")
		snapN    = flag.Int("snapshot-every", 0, "checkpoint the subscription journal every N operations (0: library default)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, fmt.Sprintf("drtreed[%d] ", *node), log.LstdFlags|log.Lmicroseconds)
	opts := []drtreed.Option{
		drtreed.WithNode(*node),
		drtreed.WithPeers(strings.Split(*peers, ",")...),
		drtreed.WithSpace(strings.Split(*space, ",")...),
		drtreed.WithGateways(*gateways),
		drtreed.WithFanout(*minFan, *maxFan),
		drtreed.WithLogf(logger.Printf),
	}
	if *httpAddr != "" {
		opts = append(opts, drtreed.WithHTTPAddr(*httpAddr))
	}
	if *dataDir != "" {
		opts = append(opts, drtreed.WithDataDir(*dataDir))
	}
	if *snapN > 0 {
		opts = append(opts, drtreed.WithSnapshotEvery(*snapN))
	}
	d, err := drtreed.New(opts...)
	if err != nil {
		logger.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Printf("signal %v: shutting down", s)
	if err := d.Close(); err != nil {
		logger.Printf("shutdown: %v", err)
	}
}
