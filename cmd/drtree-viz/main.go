// Command drtree-viz renders the paper's canonical Figure 1 scenario as
// Graphviz DOT: the subscription containment graph (Figure 1 right), the
// DR-tree level diagram (Figure 4), or the physical communication graph
// (Figure 5).
//
// Usage:
//
//	drtree-viz -what containment | tree | comm | describe
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"drtree/internal/containment"
	"drtree/internal/core"
	"drtree/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("drtree-viz", flag.ContinueOnError)
	what := fs.String("what", "tree", "diagram: containment|tree|comm|describe")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if err := render(*what, out); err != nil {
		fmt.Fprintln(os.Stderr, "drtree-viz:", err)
		return 1
	}
	return 0
}

func render(what string, out io.Writer) error {
	fig := workload.NewFigure1()

	if what == "containment" {
		items := make([]containment.Item, len(fig.Subs))
		for i := range fig.Subs {
			items[i] = containment.Item{Label: fig.Labels[i], Rect: fig.Subs[i]}
		}
		g, err := containment.Build(items)
		if err != nil {
			return err
		}
		fmt.Fprint(out, g.Dot())
		return nil
	}

	tr, err := core.New(core.Params{MinFanout: 1, MaxFanout: 3})
	if err != nil {
		return err
	}
	labels := map[core.ProcID]string{}
	for i, r := range fig.Subs {
		id := core.ProcID(i + 1)
		labels[id] = fig.Labels[i]
		if err := tr.Join(id, r); err != nil {
			return err
		}
	}
	switch what {
	case "tree":
		fmt.Fprint(out, tr.Dot(labels))
	case "comm":
		fmt.Fprint(out, tr.CommunicationDot(labels))
	case "describe":
		fmt.Fprint(out, tr.Describe(labels))
	default:
		return fmt.Errorf("unknown -what %q (containment|tree|comm|describe)", what)
	}
	return nil
}
