// Command drtree-viz renders the paper's canonical Figure 1 scenario as
// Graphviz DOT: the subscription containment graph (Figure 1 right), the
// DR-tree level diagram (Figure 4), or the physical communication graph
// (Figure 5).
//
// Usage:
//
//	drtree-viz -what containment | tree | comm | describe
package main

import (
	"flag"
	"fmt"
	"os"

	"drtree/internal/containment"
	"drtree/internal/core"
	"drtree/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drtree-viz:", err)
		os.Exit(1)
	}
}

func run() error {
	what := flag.String("what", "tree", "diagram: containment|tree|comm|describe")
	flag.Parse()

	fig := workload.NewFigure1()

	if *what == "containment" {
		items := make([]containment.Item, len(fig.Subs))
		for i := range fig.Subs {
			items[i] = containment.Item{Label: fig.Labels[i], Rect: fig.Subs[i]}
		}
		g, err := containment.Build(items)
		if err != nil {
			return err
		}
		fmt.Print(g.Dot())
		return nil
	}

	tr, err := core.New(core.Params{MinFanout: 1, MaxFanout: 3})
	if err != nil {
		return err
	}
	labels := map[core.ProcID]string{}
	for i, r := range fig.Subs {
		id := core.ProcID(i + 1)
		labels[id] = fig.Labels[i]
		if err := tr.Join(id, r); err != nil {
			return err
		}
	}
	switch *what {
	case "tree":
		fmt.Print(tr.Dot(labels))
	case "comm":
		fmt.Print(tr.CommunicationDot(labels))
	case "describe":
		fmt.Print(tr.Describe(labels))
	default:
		return fmt.Errorf("unknown -what %q (containment|tree|comm|describe)", *what)
	}
	return nil
}
