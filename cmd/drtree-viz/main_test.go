package main

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"drtree/internal/workload"
)

// figLabels are the Figure 1 subscription labels every rendering must
// mention.
func figLabels(t *testing.T) []string {
	t.Helper()
	fig := workload.NewFigure1()
	if len(fig.Labels) == 0 {
		t.Fatal("Figure 1 scenario has no subscriptions")
	}
	return fig.Labels
}

// TestTreeDotStructure renders the DR-tree level diagram and checks the
// structural invariants of the DOT output: a well-formed digraph,
// balanced braces, every subscriber present as a height-0 leaf box, and
// every edge descending exactly one level (a parent at height h points
// to a child at height h-1).
func TestTreeDotStructure(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-what", "tree"}, &out); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	dot := out.String()
	if !strings.HasPrefix(dot, "digraph drtree {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a well-formed digraph:\n%s", dot)
	}
	if open, close := strings.Count(dot, "{"), strings.Count(dot, "}"); open != close {
		t.Fatalf("unbalanced braces: %d vs %d", open, close)
	}
	for _, l := range figLabels(t) {
		if !strings.Contains(dot, fmt.Sprintf("%q", l+"@0")) {
			t.Errorf("leaf instance of %s missing from the diagram", l)
		}
	}
	edge := regexp.MustCompile(`"[^"]+@(\d+)" -> "[^"]+@(\d+)";`)
	edges := edge.FindAllStringSubmatch(dot, -1)
	if len(edges) == 0 {
		t.Fatal("level diagram has no edges")
	}
	for _, e := range edges {
		if e[1] == "" || e[2] == "" || e[1] == e[2] {
			t.Fatalf("edge does not descend a level: %q", e[0])
		}
		var hp, hc int
		fmt.Sscanf(e[1], "%d", &hp)
		fmt.Sscanf(e[2], "%d", &hc)
		if hp != hc+1 {
			t.Fatalf("edge spans heights %d -> %d, want exactly one level", hp, hc)
		}
	}
}

// TestContainmentDotStructure renders the Figure 1 containment graph and
// checks it is a well-formed digraph mentioning every subscription, with
// the canonical S2 -> S4 containment edge present.
func TestContainmentDotStructure(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-what", "containment"}, &out); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	dot := out.String()
	if !strings.HasPrefix(dot, "digraph containment {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a well-formed digraph:\n%s", dot)
	}
	for _, l := range figLabels(t) {
		if !strings.Contains(dot, fmt.Sprintf("%q", l)) {
			t.Errorf("subscription %s missing from the containment graph", l)
		}
	}
	if !strings.Contains(dot, `"S2" -> "S4";`) {
		t.Errorf("canonical containment edge S2 -> S4 missing:\n%s", dot)
	}
}

// TestCommDotStructure renders the communication graph: an undirected
// well-formed graph whose every edge joins two known subscribers.
func TestCommDotStructure(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-what", "comm"}, &out); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	dot := out.String()
	if !strings.HasPrefix(dot, "graph comm {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a well-formed graph:\n%s", dot)
	}
	known := map[string]bool{}
	for _, l := range figLabels(t) {
		known[l] = true
	}
	edge := regexp.MustCompile(`"([^"]+)" -- "([^"]+)";`)
	edges := edge.FindAllStringSubmatch(dot, -1)
	if len(edges) == 0 {
		t.Fatal("communication graph has no edges")
	}
	for _, e := range edges {
		if !known[e[1]] || !known[e[2]] {
			t.Fatalf("edge references unknown process: %q", e[0])
		}
	}
}

// TestDescribeAndFlagValidation covers the textual rendering and the
// error paths.
func TestDescribeAndFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-what", "describe"}, &out); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	if !strings.Contains(out.String(), "height 0:") {
		t.Fatalf("describe output missing leaf level:\n%s", out.String())
	}
	if code := run([]string{"-what", "bogus"}, &out); code != 1 {
		t.Fatal("unknown -what must exit 1")
	}
	if code := run([]string{"-badflag"}, &out); code != 2 {
		t.Fatal("unknown flag must exit 2")
	}
	if code := run([]string{"-h"}, &out); code != 0 {
		t.Fatal("-h must exit 0")
	}
}
