// Command drtree-sim builds a DR-tree overlay from a synthetic workload,
// publishes an event stream through it, and prints structure and routing
// accuracy statistics. With -replay it instead re-runs a recorded
// adversarial schedule artifact (see internal/harness) byte-identically
// through both engines and reports the certification verdict.
//
// Usage:
//
//	drtree-sim [-n 500] [-m 2] [-M 4] [-split quadratic]
//	           [-workload uniform|clustered|contained|mixed]
//	           [-events 1000] [-eventkind matching|uniform|hotspot]
//	           [-churn 0.1] [-seed 1]
//	drtree-sim -replay schedule.json
//	drtree-sim -hunt 50 [-hunt-out dir]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"

	"drtree"
	"drtree/internal/harness"
	"drtree/internal/stats"
	"drtree/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("drtree-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 500, "number of subscribers")
		m         = fs.Int("m", 2, "minimum fanout m")
		mm        = fs.Int("M", 4, "maximum fanout M (>= 2m)")
		engName   = fs.String("engine", "core", "overlay engine: core|proto|live")
		splitName = fs.String("split", "quadratic", "split policy: linear|quadratic|rstar")
		wl        = fs.String("workload", "uniform", "subscription workload: uniform|clustered|contained|mixed")
		events    = fs.Int("events", 1000, "number of events to publish")
		evKind    = fs.String("eventkind", "matching", "event workload: matching|uniform|hotspot")
		churnFrac = fs.Float64("churn", 0, "fraction of subscribers to crash mid-run (0..0.5)")
		seed      = fs.Uint64("seed", 1, "random seed")
		replay    = fs.String("replay", "", "replay a recorded adversarial schedule artifact and exit")
		hunt      = fs.Int("hunt", 0, "run N seeded adversarial schedules through the harness and exit")
		huntOut   = fs.String("hunt-out", "", "directory for minimized failing-schedule artifacts (with -hunt)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	// Workload-simulation flags are meaningless in replay/hunt modes;
	// reject them rather than silently certifying something else than
	// the user asked for.
	simOnly := []string{"n", "engine", "split", "workload", "events", "eventkind", "churn"}

	var err error
	switch {
	case *replay != "":
		// The artifact pins every parameter, fanouts and seed included.
		for _, f := range append(simOnly, "m", "M", "seed", "hunt", "hunt-out") {
			if explicit[f] {
				err = fmt.Errorf("-%s has no effect with -replay (the artifact is self-contained)", f)
			}
		}
		if err == nil {
			err = runReplay(*replay, out)
		}
	case *hunt > 0:
		for _, f := range simOnly {
			if explicit[f] {
				err = fmt.Errorf("-%s has no effect with -hunt", f)
			}
		}
		if err == nil {
			cfg := harness.GenConfig{}
			if explicit["m"] {
				cfg.MinFanout = *m
			}
			if explicit["M"] {
				cfg.MaxFanout = *mm
			}
			err = runHunt(*seed, *hunt, cfg, *huntOut, out)
		}
	default:
		err = runSim(simParams{
			n: *n, m: *m, mm: *mm, engine: *engName, splitName: *splitName, wl: *wl,
			events: *events, evKind: *evKind, churnFrac: *churnFrac, seed: *seed,
		}, out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drtree-sim:", err)
		return 1
	}
	return 0
}

// runReplay re-runs a schedule artifact. Load refuses artifacts that do
// not re-encode byte-identically, so the replayed schedule is exactly
// the recorded one. The verdict (certified or the reproduced violation)
// decides the exit status.
func runReplay(path string, out io.Writer) error {
	s, err := harness.Load(path)
	if err != nil {
		return err
	}
	c := s.Counts()
	fmt.Fprintf(out, "replay %s: %d steps (%d settle windows), seed %d, m=%d M=%d\n",
		path, len(s.Steps), c[harness.OpSettle], s.Seed, s.MinFanout, s.MaxFanout)
	rep, err := harness.Run(s)
	if v, ok := harness.AsViolation(err); ok {
		fmt.Fprintf(out, "violation reproduced: %v\n", v)
		return fmt.Errorf("schedule violates: %w", v)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "certified: %v\n", rep)
	return nil
}

// runHunt generates and certifies count seeded schedules; failures are
// shrunk and written as replayable artifacts.
func runHunt(seed uint64, count int, cfg harness.GenConfig, outDir string, out io.Writer) error {
	failures := 0
	for k := 0; k < count; k++ {
		s := harness.Generate(seed+uint64(k), cfg)
		rep, err := harness.Run(s)
		if err == nil {
			fmt.Fprintf(out, "seed %d: certified (%v)\n", s.Seed, rep)
			continue
		}
		failures++
		fmt.Fprintf(out, "seed %d: %v\n", s.Seed, err)
		if _, ok := harness.AsViolation(err); ok && outDir != "" {
			min := harness.Shrink(s, 0)
			path := filepath.Join(outDir, fmt.Sprintf("violation-seed%d.json", s.Seed))
			if err := min.Save(path); err != nil {
				return err
			}
			fmt.Fprintf(out, "seed %d: minimized to %d steps -> %s\n", s.Seed, len(min.Steps), path)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d schedules failed certification", failures, count)
	}
	fmt.Fprintf(out, "all %d schedules certified\n", count)
	return nil
}

type simParams struct {
	n, m, mm              int
	engine, splitName, wl string
	events                int
	evKind                string
	churnFrac             float64
	seed                  uint64
}

func runSim(p simParams, out io.Writer) error {
	ekind, err := drtree.ParseEngineKind(p.engine)
	if err != nil {
		return err
	}
	kind, err := workload.KindByName(p.wl)
	if err != nil {
		return err
	}
	var ek workload.EventKind
	switch p.evKind {
	case "matching":
		ek = workload.MatchingEvents
	case "uniform":
		ek = workload.UniformEvents
	case "hotspot":
		ek = workload.HotSpotEvents
	default:
		return fmt.Errorf("unknown event kind %q", p.evKind)
	}

	rng := rand.New(rand.NewPCG(p.seed, 0))
	world := workload.DefaultWorld()
	subs := workload.Subscriptions(rng, world, kind, p.n)
	evs := workload.Events(rng, world, ek, p.events, subs)

	eng, err := drtree.Open(
		drtree.WithEngine(ekind),
		drtree.WithFanout(p.m, p.mm),
		drtree.WithSplit(p.splitName),
		drtree.WithSeed(p.seed),
	)
	if err != nil {
		return err
	}
	defer eng.Close()
	for i, s := range subs {
		if err := eng.Join(drtree.ProcID(i+1), s); err != nil {
			return fmt.Errorf("join %d: %w", i+1, err)
		}
	}
	// Message-passing engines route joins asynchronously; drive the
	// overlay to quiescence before measuring.
	if st := eng.Stabilize(); !st.Converged {
		return fmt.Errorf("overlay did not stabilize after construction: %v", eng.CheckLegal())
	}
	if err := eng.CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal after construction: %w", err)
	}

	if p.churnFrac > 0 {
		kills := int(p.churnFrac * float64(eng.Len()))
		ids := eng.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := eng.Crash(id); err != nil {
				return err
			}
		}
		st := eng.Stabilize()
		if !st.Converged {
			return fmt.Errorf("overlay did not stabilize after churn: %v", eng.CheckLegal())
		}
		fmt.Fprintf(out, "churn: crashed %d subscribers; repaired in %d passes / %d rounds (%d rejoins)\n\n",
			kills, st.Passes, st.Rounds, st.Rejoins)
		if err := eng.CheckLegal(); err != nil {
			return fmt.Errorf("overlay not legal after churn repair: %w", err)
		}
	}

	ids := eng.ProcIDs()
	var fp, del, msgs, rounds, fn int
	for _, ev := range evs {
		d, err := eng.Publish(ids[rng.IntN(len(ids))], ev)
		if err != nil {
			return err
		}
		fp += len(d.FalsePositives)
		del += len(d.Received)
		msgs += d.Messages
		rounds += d.Rounds
		fn += len(drtree.FalseNegatives(eng, d, ev))
	}

	_, rootH := eng.Root()
	tb := stats.NewTable("metric", "value")
	tb.AddRow("engine", string(ekind))
	tb.AddRow("subscribers", eng.Len())
	tb.AddRow("height", rootH+1)
	if tr, ok := eng.(*drtree.Tree); ok {
		st := tr.ComputeStats()
		tb.AddRow("log_m(N)", st.HeightLog)
		tb.AddRow("instances", st.Nodes)
		tb.AddRow("max links/process", st.MaxLinks)
		tb.AddRow("avg links/process", st.AvgLinks)
	}
	tb.AddRow("events", len(evs))
	tb.AddRow("deliveries", del)
	tb.AddRow("messages/event", float64(msgs)/float64(max(len(evs), 1)))
	if rounds > 0 {
		tb.AddRow("rounds/event", float64(rounds)/float64(max(len(evs), 1)))
	}
	tb.AddRow("false positives/delivery", float64(fp)/float64(max(del, 1)))
	tb.AddRow("false positives/(N*events)", float64(fp)/float64(eng.Len()*max(len(evs), 1)))
	tb.AddRow("false negatives", fn)
	if tr, ok := eng.(*drtree.Tree); ok {
		tb.AddRow("weak containment violations", tr.CheckWeakContainment())
	}
	if net, ok := eng.(drtree.NetworkedEngine); ok {
		s := net.NetStats()
		tb.AddRow("net messages delivered", s.Delivered)
		tb.AddRow("net messages dropped", s.Dropped)
	}
	fmt.Fprint(out, tb)
	if fn != 0 {
		return fmt.Errorf("false negatives detected: %d", fn)
	}
	return nil
}
