// Command drtree-sim builds a DR-tree overlay from a synthetic workload,
// publishes an event stream through it, and prints structure and routing
// accuracy statistics.
//
// Usage:
//
//	drtree-sim [-n 500] [-m 2] [-M 4] [-split quadratic]
//	           [-workload uniform|clustered|contained|mixed]
//	           [-events 1000] [-eventkind matching|uniform|hotspot]
//	           [-churn 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"drtree/internal/core"
	"drtree/internal/split"
	"drtree/internal/stats"
	"drtree/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drtree-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 500, "number of subscribers")
		m         = flag.Int("m", 2, "minimum fanout m")
		mm        = flag.Int("M", 4, "maximum fanout M (>= 2m)")
		splitName = flag.String("split", "quadratic", "split policy: linear|quadratic|rstar")
		wl        = flag.String("workload", "uniform", "subscription workload: uniform|clustered|contained|mixed")
		events    = flag.Int("events", 1000, "number of events to publish")
		evKind    = flag.String("eventkind", "matching", "event workload: matching|uniform|hotspot")
		churnFrac = flag.Float64("churn", 0, "fraction of subscribers to crash mid-run (0..0.5)")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	pol, err := split.ByName(*splitName)
	if err != nil {
		return err
	}
	kind, err := workload.KindByName(*wl)
	if err != nil {
		return err
	}
	var ek workload.EventKind
	switch *evKind {
	case "matching":
		ek = workload.MatchingEvents
	case "uniform":
		ek = workload.UniformEvents
	case "hotspot":
		ek = workload.HotSpotEvents
	default:
		return fmt.Errorf("unknown event kind %q", *evKind)
	}

	rng := rand.New(rand.NewPCG(*seed, 0))
	world := workload.DefaultWorld()
	subs := workload.Subscriptions(rng, world, kind, *n)
	evs := workload.Events(rng, world, ek, *events, subs)

	tr, err := core.New(core.Params{MinFanout: *m, MaxFanout: *mm, Split: pol})
	if err != nil {
		return err
	}
	for i, s := range subs {
		if _, err := tr.Join(core.ProcID(i+1), s); err != nil {
			return fmt.Errorf("join %d: %w", i+1, err)
		}
	}
	if err := tr.CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal after construction: %w", err)
	}

	if *churnFrac > 0 {
		kills := int(*churnFrac * float64(tr.Len()))
		ids := tr.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := tr.Crash(id); err != nil {
				return err
			}
		}
		st := tr.RepairCrash()
		fmt.Printf("churn: crashed %d subscribers; repaired in %d passes (%d rejoins)\n\n",
			kills, st.StabilizeSteps, st.Reinsertions)
		if err := tr.CheckLegal(); err != nil {
			return fmt.Errorf("overlay not legal after churn repair: %w", err)
		}
	}

	ids := tr.ProcIDs()
	var fp, del, msgs, fn int
	for _, ev := range evs {
		d, err := tr.Publish(ids[rng.IntN(len(ids))], ev)
		if err != nil {
			return err
		}
		fp += len(d.FalsePositives)
		del += len(d.Received)
		msgs += d.Messages
		got := map[core.ProcID]bool{}
		for _, id := range d.Received {
			got[id] = true
		}
		for _, id := range ids {
			f, _ := tr.Filter(id)
			if f.ContainsPoint(ev) && !got[id] {
				fn++
			}
		}
	}

	st := tr.ComputeStats()
	tb := stats.NewTable("metric", "value")
	tb.AddRow("subscribers", tr.Len())
	tb.AddRow("height", st.Height)
	tb.AddRow("log_m(N)", st.HeightLog)
	tb.AddRow("instances", st.Nodes)
	tb.AddRow("max links/process", st.MaxLinks)
	tb.AddRow("avg links/process", st.AvgLinks)
	tb.AddRow("events", len(evs))
	tb.AddRow("deliveries", del)
	tb.AddRow("messages/event", float64(msgs)/float64(max(len(evs), 1)))
	tb.AddRow("false positives/delivery", float64(fp)/float64(max(del, 1)))
	tb.AddRow("false positives/(N*events)", float64(fp)/float64(tr.Len()*max(len(evs), 1)))
	tb.AddRow("false negatives", fn)
	tb.AddRow("weak containment violations", tr.CheckWeakContainment())
	fmt.Print(tb)
	if fn != 0 {
		return fmt.Errorf("false negatives detected: %d", fn)
	}
	return nil
}
