// Command drtree-sim builds a DR-tree overlay from a synthetic workload,
// publishes an event stream through it, and prints structure and routing
// accuracy statistics. With -subscribers it instead runs the gateway
// broker mode: N subscribers attach to a bounded pool of G gateway
// processes (the subscriber:process ratio as a first-class experimental
// axis), and per-event classification goes through the gateways' local
// match indexes. With -replay it re-runs a recorded adversarial schedule
// artifact (see internal/harness) byte-identically through both engines
// and reports the certification verdict.
//
// Usage:
//
//	drtree-sim [-n 500] [-m 2] [-M 4] [-split quadratic]
//	           [-workload uniform|clustered|contained|mixed]
//	           [-events 1000] [-eventkind matching|uniform|hotspot]
//	           [-churn 0.1] [-seed 1]
//	drtree-sim -subscribers 5000 [-gateways 16] [-engine core|proto|live]
//	drtree-sim -subscribers 5000 -gateway-target 256 [-workload drift|zipf|flashcrowd]
//	drtree-sim -replay schedule.json
//	drtree-sim -hunt 50 [-hunt-out dir]
//
// Broker mode additionally accepts the dynamic workload scenarios
// drift (interest regions random-walk via UpdateFilter between event
// sweeps), zipf (a Zipf-skewed hot-cell event stream), and flashcrowd
// (a burst of near-identical subscriptions lands mid-run); with
// -gateway-target the gateway pool is adaptive (WithGatewayPolicy)
// instead of fixed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"

	"drtree"
	"drtree/internal/harness"
	"drtree/internal/stats"
	"drtree/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("drtree-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 500, "number of subscribers")
		m         = fs.Int("m", 2, "minimum fanout m")
		mm        = fs.Int("M", 4, "maximum fanout M (>= 2m)")
		engName   = fs.String("engine", "core", "overlay engine: core|proto|live")
		splitName = fs.String("split", "quadratic", "split policy: linear|quadratic|rstar")
		wl        = fs.String("workload", "uniform", "subscription workload: uniform|clustered|contained|mixed")
		events    = fs.Int("events", 1000, "number of events to publish")
		evKind    = fs.String("eventkind", "matching", "event workload: matching|uniform|hotspot")
		churnFrac = fs.Float64("churn", 0, "fraction of subscribers to crash mid-run (0..0.5)")
		seed      = fs.Uint64("seed", 1, "random seed")
		subs      = fs.Int("subscribers", 0, "gateway broker mode: number of subscribers attached to the gateway pool")
		gateways  = fs.Int("gateways", 16, "gateway broker mode: overlay processes shared by all subscribers")
		gwTarget  = fs.Int("gateway-target", 0, "gateway broker mode: adaptive pool with this per-gateway subscription target (0 = fixed pool)")
		replay    = fs.String("replay", "", "replay a recorded adversarial schedule artifact and exit")
		hunt      = fs.Int("hunt", 0, "run N seeded adversarial schedules through the harness and exit")
		huntOut   = fs.String("hunt-out", "", "directory for minimized failing-schedule artifacts (with -hunt)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	// Workload-simulation flags are meaningless in replay/hunt modes;
	// reject them rather than silently certifying something else than
	// the user asked for.
	simOnly := []string{"n", "engine", "split", "workload", "events", "eventkind", "churn", "subscribers", "gateways", "gateway-target"}

	var err error
	switch {
	case *replay != "":
		// The artifact pins every parameter, fanouts and seed included.
		for _, f := range append(simOnly, "m", "M", "seed", "hunt", "hunt-out") {
			if explicit[f] {
				err = fmt.Errorf("-%s has no effect with -replay (the artifact is self-contained)", f)
			}
		}
		if err == nil {
			err = runReplay(*replay, out)
		}
	case *hunt > 0:
		for _, f := range simOnly {
			if explicit[f] {
				err = fmt.Errorf("-%s has no effect with -hunt", f)
			}
		}
		if err == nil {
			cfg := harness.GenConfig{}
			if explicit["m"] {
				cfg.MinFanout = *m
			}
			if explicit["M"] {
				cfg.MaxFanout = *mm
			}
			err = runHunt(*seed, *hunt, cfg, *huntOut, out)
		}
	case *subs > 0:
		if explicit["n"] {
			err = fmt.Errorf("-n has no effect with -subscribers (the overlay holds gateways, not subscribers)")
		}
		if explicit["gateways"] && explicit["gateway-target"] {
			err = fmt.Errorf("-gateways and -gateway-target are mutually exclusive (fixed vs adaptive pool)")
		}
		if err == nil {
			err = runBrokerSim(brokerSimParams{
				subscribers: *subs, gateways: *gateways, gatewayTarget: *gwTarget,
				m: *m, mm: *mm, engine: *engName, splitName: *splitName, wl: *wl,
				events: *events, evKind: *evKind, churnFrac: *churnFrac, seed: *seed,
			}, out)
		}
	default:
		if explicit["gateways"] {
			err = fmt.Errorf("-gateways needs -subscribers (the gateway broker mode)")
		}
		if err == nil && explicit["gateway-target"] {
			err = fmt.Errorf("-gateway-target needs -subscribers (the gateway broker mode)")
		}
		if err == nil {
			err = runSim(simParams{
				n: *n, m: *m, mm: *mm, engine: *engName, splitName: *splitName, wl: *wl,
				events: *events, evKind: *evKind, churnFrac: *churnFrac, seed: *seed,
			}, out)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drtree-sim:", err)
		return 1
	}
	return 0
}

// runReplay re-runs a schedule artifact. Load refuses artifacts that do
// not re-encode byte-identically, so the replayed schedule is exactly
// the recorded one. The verdict (certified or the reproduced violation)
// decides the exit status.
func runReplay(path string, out io.Writer) error {
	s, err := harness.Load(path)
	if err != nil {
		return err
	}
	c := s.Counts()
	fmt.Fprintf(out, "replay %s: %d steps (%d settle windows), seed %d, m=%d M=%d\n",
		path, len(s.Steps), c[harness.OpSettle], s.Seed, s.MinFanout, s.MaxFanout)
	rep, err := harness.Run(s)
	if v, ok := harness.AsViolation(err); ok {
		fmt.Fprintf(out, "violation reproduced: %v\n", v)
		return fmt.Errorf("schedule violates: %w", v)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "certified: %v\n", rep)
	return nil
}

// runHunt generates and certifies count seeded schedules; failures are
// shrunk and written as replayable artifacts.
func runHunt(seed uint64, count int, cfg harness.GenConfig, outDir string, out io.Writer) error {
	failures := 0
	for k := 0; k < count; k++ {
		s := harness.Generate(seed+uint64(k), cfg)
		rep, err := harness.Run(s)
		if err == nil {
			fmt.Fprintf(out, "seed %d: certified (%v)\n", s.Seed, rep)
			continue
		}
		failures++
		fmt.Fprintf(out, "seed %d: %v\n", s.Seed, err)
		if _, ok := harness.AsViolation(err); ok && outDir != "" {
			min := harness.Shrink(s, 0)
			path := filepath.Join(outDir, fmt.Sprintf("violation-seed%d.json", s.Seed))
			if err := min.Save(path); err != nil {
				return err
			}
			fmt.Fprintf(out, "seed %d: minimized to %d steps -> %s\n", s.Seed, len(min.Steps), path)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d schedules failed certification", failures, count)
	}
	fmt.Fprintf(out, "all %d schedules certified\n", count)
	return nil
}

type brokerSimParams struct {
	subscribers, gateways int
	gatewayTarget         int
	m, mm                 int
	engine, splitName, wl string
	events                int
	evKind                string
	churnFrac             float64
	seed                  uint64
}

// runBrokerSim runs the gateway broker mode: -subscribers subscribers
// attach to a -gateways pool over the selected engine, an event stream
// is published through the gateway overlay and classified by the
// per-gateway match indexes, and a churn fraction unsubscribes mid-run
// (exercising the opportunistic filter shrink and gateway departures).
// The dynamic scenarios (drift, zipf, flashcrowd) reshape the run: see
// the package doc.
func runBrokerSim(p brokerSimParams, out io.Writer) error {
	ekind, err := drtree.ParseEngineKind(p.engine)
	if err != nil {
		return err
	}
	scenario := ""
	kindName := p.wl
	switch p.wl {
	case "drift", "zipf", "flashcrowd":
		// Dynamic scenarios build on a uniform subscription population.
		scenario, kindName = p.wl, "uniform"
	}
	kind, err := workload.KindByName(kindName)
	if err != nil {
		return fmt.Errorf("%w (broker mode also accepts drift|zipf|flashcrowd)", err)
	}
	var ek workload.EventKind
	switch p.evKind {
	case "matching":
		ek = workload.MatchingEvents
	case "uniform":
		ek = workload.UniformEvents
	case "hotspot":
		ek = workload.HotSpotEvents
	default:
		return fmt.Errorf("unknown event kind %q", p.evKind)
	}
	if p.gateways < 1 {
		return fmt.Errorf("gateway count must be >= 1, got %d", p.gateways)
	}
	if p.churnFrac < 0 || p.churnFrac > 0.5 {
		return fmt.Errorf("churn fraction must be in [0, 0.5], got %g", p.churnFrac)
	}

	rng := rand.New(rand.NewPCG(p.seed, 0))
	world := workload.DefaultWorld()
	nInitial := p.subscribers
	burstSize := 0
	if scenario == "flashcrowd" {
		// Half the population arrives later as the crowd burst.
		burstSize = p.subscribers / 2
		nInitial = p.subscribers - burstSize
	}
	rects := workload.Subscriptions(rng, world, kind, nInitial)
	points := workload.Events(rng, world, ek, p.events, rects)
	if scenario == "zipf" {
		points = workload.ZipfEvents(rng, world, p.events, 16, 1.5)
	}

	eng, err := drtree.Open(
		drtree.WithEngine(ekind),
		drtree.WithFanout(p.m, p.mm),
		drtree.WithSplit(p.splitName),
		drtree.WithSeed(p.seed),
	)
	if err != nil {
		return err
	}
	space, err := drtree.NewSpace("x", "y")
	if err != nil {
		return err
	}
	poolOpt := drtree.WithGateways(p.gateways)
	if p.gatewayTarget > 0 {
		poolOpt = drtree.WithGatewayPolicy(p.gatewayTarget, 1, 4096)
	}
	broker, err := drtree.NewBroker(space, eng, poolOpt)
	if err != nil {
		return err
	}
	defer broker.Close()

	toFilter := func(r drtree.Rect) drtree.Filter {
		return drtree.Range("x", r.Lo(0), r.Hi(0)).And(drtree.Range("y", r.Lo(1), r.Hi(1)))
	}
	for i, r := range rects {
		if err := broker.Subscribe(drtree.ProcID(i+1), toFilter(r)); err != nil {
			return fmt.Errorf("subscribe %d: %w", i+1, err)
		}
	}
	if st := broker.Repair(); !st.Converged {
		return fmt.Errorf("gateway overlay did not stabilize: %v", eng.CheckLegal())
	}
	if err := eng.CheckLegal(); err != nil {
		return fmt.Errorf("gateway overlay not legal after construction: %w", err)
	}

	alive := make([]drtree.ProcID, nInitial)
	for i := range alive {
		alive[i] = drtree.ProcID(i + 1)
	}
	if p.churnFrac > 0 {
		kills := int(p.churnFrac * float64(nInitial))
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		for _, id := range alive[:kills] {
			if err := broker.Unsubscribe(id); err != nil {
				return err
			}
		}
		alive = alive[kills:]
		if st := broker.Repair(); !st.Converged {
			return fmt.Errorf("gateway overlay did not stabilize after churn: %v", eng.CheckLegal())
		}
		fmt.Fprintf(out, "churn: unsubscribed %d of %d subscribers\n\n", kills, nInitial)
	}

	var interested, received, fp, fn, msgs, rounds, visited, gwVisited, published int
	sweep := func() error {
		for _, pt := range points {
			ev := drtree.Event{"x": pt[0], "y": pt[1]}
			note, err := broker.Publish(alive[rng.IntN(len(alive))], ev)
			if err != nil {
				return err
			}
			published++
			interested += len(note.Interested)
			received += len(note.Received)
			fp += len(note.FalsePositives)
			fn += len(note.FalseNegatives)
			msgs += note.Messages
			rounds += note.Rounds
			visited += note.ScanVisited
			gwVisited += note.GatewayVisited
		}
		return nil
	}
	if err := sweep(); err != nil {
		return err
	}

	fullReunions := func() uint64 {
		var n uint64
		for _, st := range broker.GatewayStats() {
			n += st.FullReunions
		}
		return n
	}
	var driftTicks int
	var driftReunions uint64
	poolBeforeBurst := 0
	switch scenario {
	case "drift":
		// Interest regions random-walk between event sweeps: contained
		// moves should ride the incremental re-union (O(d) per move).
		const ticks = 3
		driftTicks = ticks
		before := fullReunions()
		cur := rects
		for tick := 0; tick < ticks; tick++ {
			cur = workload.DriftRects(rng, world, cur, 0.01)
			for _, id := range alive {
				if err := broker.UpdateFilter(id, toFilter(cur[id-1])); err != nil {
					return fmt.Errorf("drift tick %d, subscriber %d: %w", tick, id, err)
				}
			}
			if err := sweep(); err != nil {
				return err
			}
		}
		driftReunions = fullReunions() - before
	case "flashcrowd":
		// The crowd lands mid-run: a burst of near-identical interests an
		// adaptive pool absorbs by splitting the hot gateways.
		poolBeforeBurst = broker.Gateways()
		for i, r := range workload.FlashCrowdRects(rng, world, burstSize) {
			if err := broker.Subscribe(drtree.ProcID(nInitial+i+1), toFilter(r)); err != nil {
				return fmt.Errorf("burst subscribe %d: %w", nInitial+i+1, err)
			}
		}
		if err := sweep(); err != nil {
			return err
		}
	}

	joined := 0
	for _, st := range broker.GatewayStats() {
		if st.Joined {
			joined++
		}
	}
	_, rootH := eng.Root()
	nEv := max(published, 1)
	tb := stats.NewTable("metric", "value")
	tb.AddRow("engine", string(ekind))
	if scenario != "" {
		tb.AddRow("scenario", scenario)
	}
	tb.AddRow("subscribers", broker.Len())
	if p.gatewayTarget > 0 {
		tb.AddRow("gateway pool", "adaptive")
		tb.AddRow("gateway target load", p.gatewayTarget)
	}
	tb.AddRow("gateways (pool)", broker.Gateways())
	tb.AddRow("gateways (joined)", joined)
	tb.AddRow("overlay processes", eng.Len())
	tb.AddRow("subscribers/process", float64(broker.Len())/float64(max(eng.Len(), 1)))
	tb.AddRow("overlay height", rootH+1)
	tb.AddRow("events", published)
	tb.AddRow("interested/event", float64(interested)/float64(nEv))
	tb.AddRow("received/event", float64(received)/float64(nEv))
	tb.AddRow("overlay messages/event", float64(msgs)/float64(nEv))
	if rounds > 0 {
		tb.AddRow("rounds/event", float64(rounds)/float64(nEv))
	}
	tb.AddRow("match-scan visits/event", float64(visited)/float64(nEv))
	tb.AddRow("gateways visited/event", float64(gwVisited)/float64(nEv))
	if scenario == "drift" {
		tb.AddRow("drift ticks", driftTicks)
		tb.AddRow("drift full re-unions", driftReunions)
	}
	if scenario == "flashcrowd" {
		tb.AddRow("pool before burst", poolBeforeBurst)
		tb.AddRow("pool after burst", broker.Gateways())
	}
	tb.AddRow("false positives/delivery", float64(fp)/float64(max(received, 1)))
	tb.AddRow("false negatives", fn)
	fmt.Fprint(out, tb)
	if fn != 0 {
		return fmt.Errorf("false negatives detected: %d", fn)
	}
	return nil
}

type simParams struct {
	n, m, mm              int
	engine, splitName, wl string
	events                int
	evKind                string
	churnFrac             float64
	seed                  uint64
}

func runSim(p simParams, out io.Writer) error {
	ekind, err := drtree.ParseEngineKind(p.engine)
	if err != nil {
		return err
	}
	kind, err := workload.KindByName(p.wl)
	if err != nil {
		return err
	}
	var ek workload.EventKind
	switch p.evKind {
	case "matching":
		ek = workload.MatchingEvents
	case "uniform":
		ek = workload.UniformEvents
	case "hotspot":
		ek = workload.HotSpotEvents
	default:
		return fmt.Errorf("unknown event kind %q", p.evKind)
	}

	rng := rand.New(rand.NewPCG(p.seed, 0))
	world := workload.DefaultWorld()
	subs := workload.Subscriptions(rng, world, kind, p.n)
	evs := workload.Events(rng, world, ek, p.events, subs)

	eng, err := drtree.Open(
		drtree.WithEngine(ekind),
		drtree.WithFanout(p.m, p.mm),
		drtree.WithSplit(p.splitName),
		drtree.WithSeed(p.seed),
	)
	if err != nil {
		return err
	}
	defer eng.Close()
	for i, s := range subs {
		if err := eng.Join(drtree.ProcID(i+1), s); err != nil {
			return fmt.Errorf("join %d: %w", i+1, err)
		}
	}
	// Message-passing engines route joins asynchronously; drive the
	// overlay to quiescence before measuring.
	if st := eng.Stabilize(); !st.Converged {
		return fmt.Errorf("overlay did not stabilize after construction: %v", eng.CheckLegal())
	}
	if err := eng.CheckLegal(); err != nil {
		return fmt.Errorf("overlay not legal after construction: %w", err)
	}

	if p.churnFrac > 0 {
		kills := int(p.churnFrac * float64(eng.Len()))
		ids := eng.ProcIDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:kills] {
			if err := eng.Crash(id); err != nil {
				return err
			}
		}
		st := eng.Stabilize()
		if !st.Converged {
			return fmt.Errorf("overlay did not stabilize after churn: %v", eng.CheckLegal())
		}
		fmt.Fprintf(out, "churn: crashed %d subscribers; repaired in %d passes / %d rounds (%d rejoins)\n\n",
			kills, st.Passes, st.Rounds, st.Rejoins)
		if err := eng.CheckLegal(); err != nil {
			return fmt.Errorf("overlay not legal after churn repair: %w", err)
		}
	}

	ids := eng.ProcIDs()
	var fp, del, msgs, rounds, fn int
	for _, ev := range evs {
		d, err := eng.Publish(ids[rng.IntN(len(ids))], ev)
		if err != nil {
			return err
		}
		fp += len(d.FalsePositives)
		del += len(d.Received)
		msgs += d.Messages
		rounds += d.Rounds
		fn += len(drtree.FalseNegatives(eng, d, ev))
	}

	_, rootH := eng.Root()
	tb := stats.NewTable("metric", "value")
	tb.AddRow("engine", string(ekind))
	tb.AddRow("subscribers", eng.Len())
	tb.AddRow("height", rootH+1)
	if tr, ok := eng.(*drtree.Tree); ok {
		st := tr.ComputeStats()
		tb.AddRow("log_m(N)", st.HeightLog)
		tb.AddRow("instances", st.Nodes)
		tb.AddRow("max links/process", st.MaxLinks)
		tb.AddRow("avg links/process", st.AvgLinks)
	}
	tb.AddRow("events", len(evs))
	tb.AddRow("deliveries", del)
	tb.AddRow("messages/event", float64(msgs)/float64(max(len(evs), 1)))
	if rounds > 0 {
		tb.AddRow("rounds/event", float64(rounds)/float64(max(len(evs), 1)))
	}
	tb.AddRow("false positives/delivery", float64(fp)/float64(max(del, 1)))
	tb.AddRow("false positives/(N*events)", float64(fp)/float64(eng.Len()*max(len(evs), 1)))
	tb.AddRow("false negatives", fn)
	if tr, ok := eng.(*drtree.Tree); ok {
		tb.AddRow("weak containment violations", tr.CheckWeakContainment())
	}
	if net, ok := eng.(drtree.NetworkedEngine); ok {
		s := net.NetStats()
		tb.AddRow("net messages delivered", s.Delivered)
		tb.AddRow("net messages dropped", s.Dropped)
	}
	fmt.Fprint(out, tb)
	if fn != 0 {
		return fmt.Errorf("false negatives detected: %d", fn)
	}
	return nil
}
