package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drtree/internal/harness"
)

// TestReplayReproducesShrunkViolation is the end-to-end acceptance path:
// a deliberately injected invariant violation (a convergence budget far
// below what churn repair needs) is shrunk to a minimal schedule, saved,
// and replayed byte-identically through the drtree-sim -replay command,
// which must reproduce the exact same violation.
func TestReplayReproducesShrunkViolation(t *testing.T) {
	s := harness.Generate(11, harness.GenConfig{})
	s.SettleRounds = 6
	_, err := harness.Run(s)
	orig, ok := harness.AsViolation(err)
	if !ok {
		t.Fatalf("tight budget must produce a violation, got %v", err)
	}

	min := harness.Shrink(s, 0)
	if len(min.Steps) >= len(s.Steps) || len(min.Steps) > 8 {
		t.Fatalf("shrink %d -> %d steps", len(s.Steps), len(min.Steps))
	}
	path := filepath.Join(t.TempDir(), "violation.json")
	if err := min.Save(path); err != nil {
		t.Fatal(err)
	}
	saved, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Replay through the command (the -replay flag path). Load inside
	// refuses any artifact whose re-encoding is not byte-identical.
	var out bytes.Buffer
	if code := run([]string{"-replay", path}, &out); code != 1 {
		t.Fatalf("replay of a violating schedule must exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "violation reproduced") {
		t.Fatalf("replay output missing verdict:\n%s", out.String())
	}
	// The violation reproduced by the replayed artifact matches the one
	// the in-memory shrunk schedule produces.
	_, replayErr := harness.Run(mustLoad(t, path))
	v, ok := harness.AsViolation(replayErr)
	if !ok {
		t.Fatalf("replayed schedule did not violate: %v", replayErr)
	}
	if v.Kind != orig.Kind {
		t.Fatalf("violation kind changed: %q -> %q", orig.Kind, v.Kind)
	}
	if !strings.Contains(out.String(), v.Error()) {
		t.Fatalf("command output %q does not contain %q", out.String(), v.Error())
	}

	// The artifact on disk survived the round trip untouched.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, after) {
		t.Fatal("artifact changed on disk")
	}
}

// TestReplayCertifiesPassingSchedule: replaying a certifying schedule
// exits 0.
func TestReplayCertifiesPassingSchedule(t *testing.T) {
	s := harness.Generate(1, harness.GenConfig{})
	path := filepath.Join(t.TempDir(), "pass.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-replay", path}, &out); code != 0 {
		t.Fatalf("replay of a certifying schedule must exit 0, got %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "certified") {
		t.Fatalf("missing certification verdict:\n%s", out.String())
	}
}

// TestReplayRejectsNonCanonicalArtifact: replay refuses artifacts that
// would not re-encode byte-identically.
func TestReplayRejectsNonCanonicalArtifact(t *testing.T) {
	s := harness.Generate(1, harness.GenConfig{})
	path := filepath.Join(t.TempDir(), "loose.json")
	if err := os.WriteFile(path, append([]byte("\n"), s.Encode()...), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-replay", path}, &out); code != 1 {
		t.Fatalf("non-canonical artifact must be rejected, got exit %d", code)
	}
}

// TestModeFlagValidation: -h exits 0; sim-only flags are rejected in
// replay/hunt modes instead of being silently ignored; pinned fanouts
// reach the hunt generator.
func TestModeFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-h"}, &out); code != 0 {
		t.Fatalf("-h must exit 0, got %d", code)
	}
	if code := run([]string{"-badflag"}, &out); code != 2 {
		t.Fatalf("unknown flag must exit 2, got %d", code)
	}
	if code := run([]string{"-replay", "x.json", "-n", "10"}, &out); code != 1 {
		t.Fatalf("-replay with -n must be rejected, got %d", code)
	}
	if code := run([]string{"-hunt", "1", "-events", "5"}, &out); code != 1 {
		t.Fatalf("-hunt with -events must be rejected, got %d", code)
	}
	out.Reset()
	if code := run([]string{"-hunt", "2", "-m", "3", "-M", "6"}, &out); code != 0 {
		t.Fatalf("-hunt with pinned fanouts failed: %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "all 2 schedules certified") {
		t.Fatalf("hunt output:\n%s", out.String())
	}
}

// TestSimSmoke drives the classic workload path end to end with a small
// population.
func TestSimSmoke(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-n", "60", "-events", "50", "-churn", "0.1"}, &out); code != 0 {
		t.Fatalf("sim run failed with exit %d", code)
	}
	if !strings.Contains(out.String(), "false negatives") {
		t.Fatalf("sim output missing stats table:\n%s", out.String())
	}
}

// TestSimEngineFlag drives the same workload through each overlay
// engine; the wire-protocol run must also report network counters.
func TestSimEngineFlag(t *testing.T) {
	for _, eng := range []string{"proto", "live"} {
		n, events := "30", "30"
		if eng == "live" {
			n, events = "12", "10" // real timers: keep the population small
		}
		var out bytes.Buffer
		if code := run([]string{"-engine", eng, "-n", n, "-events", events, "-seed", "5"}, &out); code != 0 {
			t.Fatalf("-engine %s failed with exit %d\n%s", eng, code, out.String())
		}
		if !strings.Contains(out.String(), "false negatives") {
			t.Fatalf("-engine %s output missing stats table:\n%s", eng, out.String())
		}
		if eng == "proto" && !strings.Contains(out.String(), "net messages delivered") {
			t.Fatalf("-engine proto output missing network counters:\n%s", out.String())
		}
	}
	var out bytes.Buffer
	if code := run([]string{"-engine", "bogus"}, &out); code != 1 {
		t.Fatal("unknown engine must fail")
	}
	out.Reset()
	if code := run([]string{"-replay", "nope.json", "-engine", "proto"}, &out); code != 1 {
		t.Fatal("-engine must be rejected with -replay")
	}
}

// TestBrokerSimSmoke drives the gateway broker mode end to end: many
// subscribers over a small gateway pool, with churn, over both the
// sequential and the wire engine.
func TestBrokerSimSmoke(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-subscribers", "400", "-gateways", "8", "-events", "60", "-churn", "0.1"}, &out); code != 0 {
		t.Fatalf("broker sim failed with exit %d\n%s", code, out.String())
	}
	for _, want := range []string{"gateways (pool)", "subscribers/process", "match-scan visits/event", "false negatives"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("broker sim output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"-subscribers", "120", "-gateways", "4", "-engine", "proto", "-events", "30"}, &out); code != 0 {
		t.Fatalf("broker sim over proto failed with exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "rounds/event") {
		t.Fatalf("proto broker sim output missing rounds:\n%s", out.String())
	}
}

// TestBrokerSimWorkloads drives the broker mode through every workload
// value — the static subscription shapes and the dynamic scenarios —
// over both fixed and adaptive gateway pools.
func TestBrokerSimWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "drift", "zipf", "flashcrowd"} {
		t.Run(wl+"/fixed", func(t *testing.T) {
			var out bytes.Buffer
			if code := run([]string{"-subscribers", "200", "-events", "30", "-workload", wl}, &out); code != 0 {
				t.Fatalf("-workload %s failed with exit %d\n%s", wl, code, out.String())
			}
			if !strings.Contains(out.String(), "false negatives") {
				t.Fatalf("-workload %s output missing stats table:\n%s", wl, out.String())
			}
		})
		t.Run(wl+"/adaptive", func(t *testing.T) {
			var out bytes.Buffer
			if code := run([]string{"-subscribers", "200", "-events", "30", "-workload", wl, "-gateway-target", "16"}, &out); code != 0 {
				t.Fatalf("-workload %s -gateway-target failed with exit %d\n%s", wl, code, out.String())
			}
			if !strings.Contains(out.String(), "gateway pool") || !strings.Contains(out.String(), "adaptive") {
				t.Fatalf("-workload %s adaptive output missing pool mode:\n%s", wl, out.String())
			}
		})
	}
	var out bytes.Buffer
	if code := run([]string{"-subscribers", "100", "-events", "20", "-workload", "drift"}, &out); code != 0 {
		t.Fatal("drift on a fixed pool must still run")
	}
	if !strings.Contains(out.String(), "drift full re-unions") {
		t.Fatalf("drift output missing re-union counter:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-subscribers", "100", "-events", "20", "-workload", "flashcrowd", "-gateway-target", "8"}, &out); code != 0 {
		t.Fatal("flashcrowd on an adaptive pool must run")
	}
	if !strings.Contains(out.String(), "pool after burst") {
		t.Fatalf("flashcrowd output missing burst pool rows:\n%s", out.String())
	}
}

// TestBrokerSimFlagValidation: the gateway mode rejects contradictory
// flags instead of silently ignoring them.
func TestBrokerSimFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-subscribers", "50", "-n", "10"}, &out); code != 1 {
		t.Fatalf("-subscribers with -n must be rejected, got %d", code)
	}
	if code := run([]string{"-gateways", "4"}, &out); code != 1 {
		t.Fatalf("-gateways without -subscribers must be rejected, got %d", code)
	}
	if code := run([]string{"-subscribers", "50", "-gateways", "0"}, &out); code != 1 {
		t.Fatalf("zero gateways must be rejected, got %d", code)
	}
	if code := run([]string{"-replay", "x.json", "-subscribers", "5"}, &out); code != 1 {
		t.Fatalf("-replay with -subscribers must be rejected, got %d", code)
	}
	if code := run([]string{"-gateway-target", "32"}, &out); code != 1 {
		t.Fatalf("-gateway-target without -subscribers must be rejected, got %d", code)
	}
	if code := run([]string{"-subscribers", "50", "-gateways", "4", "-gateway-target", "32"}, &out); code != 1 {
		t.Fatalf("-gateways with -gateway-target must be rejected, got %d", code)
	}
	if code := run([]string{"-subscribers", "50", "-workload", "bogus"}, &out); code != 1 {
		t.Fatalf("unknown broker workload must be rejected, got %d", code)
	}
}

func mustLoad(t *testing.T, path string) *harness.Schedule {
	t.Helper()
	s, err := harness.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
